#include "sim/async_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/topology_gen.hpp"

namespace m2hew::sim {
namespace {

// Scripted frame policy: fixed sequence, repeating the last action forever.
class ScriptedFramePolicy final : public AsyncPolicy {
 public:
  explicit ScriptedFramePolicy(std::vector<FrameAction> script)
      : script_(std::move(script)) {}

  FrameAction next_frame(util::Rng&) override {
    const FrameAction a = script_[std::min(index_, script_.size() - 1)];
    ++index_;
    return a;
  }

 private:
  std::vector<FrameAction> script_;
  std::size_t index_ = 0;
};

constexpr FrameAction kTx0{Mode::kTransmit, 0};
constexpr FrameAction kRx0{Mode::kReceive, 0};
constexpr FrameAction kTx1{Mode::kTransmit, 1};
constexpr FrameAction kQuiet{Mode::kQuiet, net::kInvalidChannel};

[[nodiscard]] AsyncPolicyFactory scripted(
    std::vector<std::vector<FrameAction>> per_node) {
  auto shared = std::make_shared<std::vector<std::vector<FrameAction>>>(
      std::move(per_node));
  return [shared](const net::Network&, net::NodeId u) {
    return std::make_unique<ScriptedFramePolicy>((*shared)[u]);
  };
}

[[nodiscard]] net::Network two_node_net() {
  net::Topology t(2);
  t.add_edge(0, 1);
  return net::Network(std::move(t), std::vector<net::ChannelSet>(
                                        2, net::ChannelSet(2, {0, 1})));
}

[[nodiscard]] net::Network star3_net() {
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  return net::Network(std::move(t), std::vector<net::ChannelSet>(
                                        3, net::ChannelSet(2, {0, 1})));
}

TEST(AsyncEngine, AlignedFramesDeliverInFirstSlot) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.frame_length = 3.0;  // slots of length 1
  config.max_real_time = 100.0;
  const auto result = run_async_engine(
      network, scripted({{kTx0}, {kRx0}}), config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
  // First slot of node 0's first frame is [0, 1]; reception at its end.
  EXPECT_DOUBLE_EQ(result.state.first_coverage_time({0, 1}), 1.0);
  EXPECT_FALSE(result.state.is_covered({1, 0}));
}

TEST(AsyncEngine, TransmitterFrameFullyInterferedByOtherSender) {
  // Hub 0 listens on c0; nodes 1 and 2 both transmit whole frames on c0
  // with identical (ideal, aligned) clocks: every slot of each is
  // overlapped by the other's burst, so the hub hears nothing.
  const net::Network network = star3_net();
  AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 30.0;
  config.stop_when_complete = false;
  config.max_frames_per_node = 10;
  const auto result = run_async_engine(
      network, scripted({{kRx0}, {kTx0}, {kTx0}}), config);
  EXPECT_EQ(result.state.covered_links(), 0u);
}

TEST(AsyncEngine, DifferentChannelsDoNotInterfere) {
  const net::Network network = star3_net();
  AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 30.0;
  config.stop_when_complete = false;
  config.max_frames_per_node = 4;
  // Hub listens c0 then c1; 1 transmits on c0, 2 on c1.
  const auto result = run_async_engine(
      network, scripted({{kRx0, {Mode::kReceive, 1}}, {kTx0}, {kTx1}}),
      config);
  EXPECT_TRUE(result.state.is_covered({1, 0}));
  EXPECT_TRUE(result.state.is_covered({2, 0}));
}

TEST(AsyncEngine, PartialOverlapInterferenceKillsOnlyOverlappedSlots) {
  // Hub listens [0, 3] on c0. Node 1 transmits its frame [0, 3]; node 2
  // starts at 1.5 and transmits [1.5, 4.5]. Node 2's burst overlaps node
  // 1's slots [1,2] and [2,3] but not [0,1] — so the hub still hears node
  // 1 via its first slot. Node 2's own slots inside [0,3] are all
  // overlapped by node 1's burst.
  const net::Network network = star3_net();
  AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 3.1;  // only the hub's first listening frame
  config.starts = {0.0, 0.0, 1.5};
  config.stop_when_complete = false;
  const auto result = run_async_engine(
      network, scripted({{kRx0, kQuiet}, {kTx0, kQuiet}, {kTx0, kQuiet}}),
      config);
  EXPECT_TRUE(result.state.is_covered({1, 0}));
  EXPECT_FALSE(result.state.is_covered({2, 0}));
  EXPECT_DOUBLE_EQ(result.state.first_coverage_time({1, 0}), 1.0);
}

TEST(AsyncEngine, MisalignedFramesStillDeliver) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.starts = {1.3, 0.0};  // transmitter offset inside listener frame
  config.max_real_time = 100.0;
  const auto result = run_async_engine(
      network, scripted({{kTx0}, {kRx0}}), config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
}

TEST(AsyncEngine, DriftedClocksStillDeliver) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 300.0;
  config.clock_builder = [](net::NodeId u, std::uint64_t) {
    // One fast clock at +1/7, one slow at −1/7 (the paper's extremes).
    const double drift = (u == 0) ? 1.0 / 7.0 : -1.0 / 7.0;
    return std::make_unique<ConstantDriftClock>(drift, 0.0);
  };
  const auto result = run_async_engine(
      network, scripted({{kTx0}, {kRx0}}), config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
}

TEST(AsyncEngine, FramesStartedMatchesBudget) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.frame_length = 1.0;
  config.max_frames_per_node = 7;
  config.max_real_time = 1e6;
  config.stop_when_complete = false;
  const auto result = run_async_engine(
      network, scripted({{kQuiet}, {kQuiet}}), config);
  EXPECT_EQ(result.frames_started[0], 7u);
  EXPECT_EQ(result.frames_started[1], 7u);
  EXPECT_FALSE(result.complete);
}

TEST(AsyncEngine, TsIsLatestStart) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.starts = {0.0, 7.5};
  config.max_real_time = 100.0;
  // Node 0 transmits its first three frames ([0,3), [3,6), [6,9)) then
  // listens; node 1 (starting at 7.5) listens one frame then transmits.
  // Both directions get covered only after node 1 is awake.
  const auto result = run_async_engine(
      network, scripted({{kTx0, kTx0, kTx0, kRx0}, {kRx0, kTx0}}), config);
  EXPECT_DOUBLE_EQ(result.t_s, 7.5);
  ASSERT_TRUE(result.complete);
  EXPECT_GE(result.completion_time, 7.5);
}

TEST(AsyncEngine, FullFramesSinceTsAreConsistent) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 1000.0;
  // Node 0 listens in frame 0 (covering (1,0) at t=1 from node 1's initial
  // transmit frame), then stays quiet until transmitting in frame 4; node 1
  // listens from frame 1 onward, covering (0,1) at t=13.
  const auto result = run_async_engine(
      network,
      scripted({{kRx0, kQuiet, kQuiet, kQuiet, kTx0, kQuiet},
                {kTx0, kRx0}}),
      config);
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.full_frames_since_ts.size(), 2u);
  // Completion happens at the end of the first slot of frame 4 (t = 13):
  // node timelines are ideal and start at 0, so both nodes fit exactly 4
  // full frames in [0, 13].
  EXPECT_DOUBLE_EQ(result.completion_time, 13.0);
  EXPECT_EQ(result.full_frames_since_ts[0], 4u);
  EXPECT_EQ(result.full_frames_since_ts[1], 4u);
}

TEST(AsyncEngine, CertainLossBlocksDelivery) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 60.0;
  config.loss_probability = 0.999999;
  const auto result = run_async_engine(
      network, scripted({{kTx0}, {kRx0}}), config);
  EXPECT_FALSE(result.state.is_covered({0, 1}));
}

TEST(AsyncEngine, QuietFramesProduceNothing) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.frame_length = 1.0;
  config.max_real_time = 20.0;
  config.stop_when_complete = false;
  config.max_frames_per_node = 10;
  const auto result = run_async_engine(
      network, scripted({{kQuiet}, {kRx0}}), config);
  EXPECT_EQ(result.state.covered_links(), 0u);
  EXPECT_EQ(result.state.reception_count(), 0u);
}

TEST(AsyncEngine, SlotsPerFrameAblationChangesSlotLength) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.frame_length = 4.0;
  config.slots_per_frame = 4;
  config.max_real_time = 50.0;
  const auto result = run_async_engine(
      network, scripted({{kTx0}, {kRx0}}), config);
  ASSERT_TRUE(result.state.is_covered({0, 1}));
  // First slot is [0, 1] with 4 slots over length 4.
  EXPECT_DOUBLE_EQ(result.state.first_coverage_time({0, 1}), 1.0);
}

TEST(AsyncEngineDeath, BadSlotCountAborts) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.slots_per_frame = 0;
  EXPECT_DEATH(
      (void)run_async_engine(network, scripted({{kRx0}, {kRx0}}), config),
      "CHECK failed");
}

TEST(AsyncEngineDeath, WrongStartTimesSizeAborts) {
  const net::Network network = two_node_net();
  AsyncEngineConfig config;
  config.starts = {0.0};
  EXPECT_DEATH(
      (void)run_async_engine(network, scripted({{kRx0}, {kRx0}}), config),
      "CHECK failed");
}

}  // namespace
}  // namespace m2hew::sim
