#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace m2hew::util {
namespace {

TEST(Histogram, BucketsAssignCorrectly) {
  Histogram h(0.0, 10.0, 5);  // buckets of width 2
  h.add(0.0);   // bucket 0
  h.add(1.9);   // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.9);   // bucket 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(1), 1u);
  EXPECT_EQ(h.count_at(2), 0u);
  EXPECT_EQ(h.count_at(4), 1u);
}

TEST(Histogram, OutOfRangeValuesClampToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // exactly hi clamps into the last bucket
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(4), 2u);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 20.0);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);  // count column
  // Two bucket rows -> two newlines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Histogram, SingleBucketTakesEverything) {
  Histogram h(0.0, 1.0, 1);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_EQ(h.count_at(0), 10u);
}

TEST(HistogramDeath, InvalidConstruction) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 3), "CHECK failed");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "CHECK failed");
}

TEST(HistogramDeath, CountAtOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DEATH((void)h.count_at(2), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::util
