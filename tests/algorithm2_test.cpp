#include "core/algorithm2.hpp"

#include <gtest/gtest.h>

#include "core/transmit_probability.hpp"
#include "util/rng.hpp"

namespace m2hew::core {
namespace {

TEST(Algorithm2, EstimateStartsAtTwo) {
  const net::ChannelSet a(4, {0, 1});
  const Algorithm2Policy policy(a);
  EXPECT_EQ(policy.current_estimate(), 2u);
}

TEST(Algorithm2, IncrementScheduleAdvancesPerStage) {
  const net::ChannelSet a(4, {0, 1});
  Algorithm2Policy policy(a, EstimateSchedule::kIncrement);
  util::Rng rng(1);
  // Stage with d=2 lasts 1 slot; then d=3 lasts 2; d=4 lasts 2; d=5 lasts 3.
  (void)policy.next_slot(rng);
  EXPECT_EQ(policy.current_estimate(), 3u);
  (void)policy.next_slot(rng);
  (void)policy.next_slot(rng);
  EXPECT_EQ(policy.current_estimate(), 4u);
  (void)policy.next_slot(rng);
  (void)policy.next_slot(rng);
  EXPECT_EQ(policy.current_estimate(), 5u);
  (void)policy.next_slot(rng);
  (void)policy.next_slot(rng);
  (void)policy.next_slot(rng);
  EXPECT_EQ(policy.current_estimate(), 6u);
}

TEST(Algorithm2, DoublingScheduleAdvancesGeometrically) {
  const net::ChannelSet a(4, {0, 1});
  Algorithm2Policy policy(a, EstimateSchedule::kDouble);
  util::Rng rng(2);
  (void)policy.next_slot(rng);  // d=2, 1 slot
  EXPECT_EQ(policy.current_estimate(), 4u);
  (void)policy.next_slot(rng);  // d=4, 2 slots
  (void)policy.next_slot(rng);
  EXPECT_EQ(policy.current_estimate(), 8u);
  for (int i = 0; i < 3; ++i) (void)policy.next_slot(rng);  // d=8, 3 slots
  EXPECT_EQ(policy.current_estimate(), 16u);
}

TEST(Algorithm2, SlotsInStageUseAlg1Probabilities) {
  // In every stage, slot i transmits w.p. min(1/2, |A|/2^i) — with |A| = 1
  // slot 1 gives exactly p = 1/2; measure the first slot of many policies.
  const net::ChannelSet a(4, {0});
  util::Rng rng(3);
  int transmissions = 0;
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    Algorithm2Policy policy(a);
    if (policy.next_slot(rng).mode == sim::Mode::kTransmit) ++transmissions;
  }
  EXPECT_NEAR(transmissions / static_cast<double>(kTrials), 0.5, 0.015);
}

TEST(Algorithm2, ChannelsAlwaysFromAvailableSet) {
  const net::ChannelSet a(32, {5, 6, 30});
  Algorithm2Policy policy(a);
  util::Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_TRUE(a.contains(policy.next_slot(rng).channel));
  }
}

TEST(Algorithm2Death, EmptyAvailableSetAborts) {
  const net::ChannelSet empty(4);
  EXPECT_DEATH(Algorithm2Policy policy(empty), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::core
