#include "core/algorithm3.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace m2hew::core {
namespace {

TEST(Algorithm3, ProbabilityMatchesFormula) {
  const net::ChannelSet a(16, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(Algorithm3Policy(a, 16).transmit_probability(), 0.25);
  EXPECT_DOUBLE_EQ(Algorithm3Policy(a, 4).transmit_probability(), 0.5);
  EXPECT_DOUBLE_EQ(Algorithm3Policy(a, 400).transmit_probability(), 0.01);
}

TEST(Algorithm3, TransmitRateIsConstantAcrossSlots) {
  const net::ChannelSet a(16, {0, 1, 2, 3});
  Algorithm3Policy policy(a, 16);  // p = 0.25
  util::Rng rng(1);
  // Measure the rate in two disjoint windows far apart: unlike Algorithm 1
  // there is no stage schedule, so both windows must match p.
  auto measure = [&](int slots) {
    int tx = 0;
    for (int i = 0; i < slots; ++i) {
      if (policy.next_slot(rng).mode == sim::Mode::kTransmit) ++tx;
    }
    return tx / static_cast<double>(slots);
  };
  EXPECT_NEAR(measure(30000), 0.25, 0.01);
  EXPECT_NEAR(measure(30000), 0.25, 0.01);
}

TEST(Algorithm3, ChannelChoiceUniformOverAvailable) {
  const net::ChannelSet a(64, {10, 20, 30, 40});
  Algorithm3Policy policy(a, 8);
  util::Rng rng(2);
  std::map<net::ChannelId, int> counts;
  constexpr int kSlots = 40000;
  for (int i = 0; i < kSlots; ++i) {
    const auto action = policy.next_slot(rng);
    EXPECT_TRUE(a.contains(action.channel));
    ++counts[action.channel];
  }
  for (const auto& [channel, count] : counts) {
    EXPECT_NEAR(count, kSlots / 4.0, 500.0) << "channel " << channel;
  }
}

TEST(Algorithm3, NeverQuiet) {
  const net::ChannelSet a(4, {1});
  Algorithm3Policy policy(a, 2);
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(policy.next_slot(rng).mode, sim::Mode::kQuiet);
  }
}

TEST(Algorithm3Death, InvalidInputsAbort) {
  const net::ChannelSet empty(4);
  EXPECT_DEATH(Algorithm3Policy(empty, 4), "CHECK failed");
  const net::ChannelSet a(4, {0});
  EXPECT_DEATH(Algorithm3Policy(a, 0), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::core
