#include "net/network.hpp"

#include <gtest/gtest.h>

#include "net/topology_gen.hpp"

namespace m2hew::net {
namespace {

// Triangle where each pair shares a different overlap:
//   A(0) = {0,1}, A(1) = {1,2}, A(2) = {0,1,2}
//   span(0,1) = {1}, span(0,2) = {0,1}, span(1,2) = {1,2}
[[nodiscard]] Network make_triangle() {
  Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  t.add_edge(1, 2);
  return Network(std::move(t), {ChannelSet(3, {0, 1}), ChannelSet(3, {1, 2}),
                                ChannelSet(3, {0, 1, 2})});
}

TEST(Network, BasicParams) {
  const Network net = make_triangle();
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.universe_size(), 3u);
  EXPECT_EQ(net.max_channel_set_size(), 3u);  // S = |A(2)|
}

TEST(Network, SpansAreIntersections) {
  const Network net = make_triangle();
  EXPECT_EQ(net.span(0, 1), ChannelSet(3, {1}));
  EXPECT_EQ(net.span(0, 2), ChannelSet(3, {0, 1}));
  EXPECT_EQ(net.span(1, 2), ChannelSet(3, {1, 2}));
  EXPECT_EQ(net.span(2, 1), net.span(1, 2));  // order-insensitive
}

TEST(Network, DegreeOnChannel) {
  const Network net = make_triangle();
  // Channel 1 is shared on all three edges: everyone has 2 neighbors on it.
  EXPECT_EQ(net.degree_on_channel(0, 1), 2u);
  EXPECT_EQ(net.degree_on_channel(1, 1), 2u);
  EXPECT_EQ(net.degree_on_channel(2, 1), 2u);
  // Channel 0 is shared only on edge {0,2}.
  EXPECT_EQ(net.degree_on_channel(0, 0), 1u);
  EXPECT_EQ(net.degree_on_channel(2, 0), 1u);
  EXPECT_EQ(net.degree_on_channel(1, 0), 0u);
  EXPECT_EQ(net.max_channel_degree(), 2u);  // Δ
}

TEST(Network, LinksAreDirectedPairs) {
  const Network net = make_triangle();
  EXPECT_EQ(net.links().size(), 6u);  // 3 edges × 2 directions
  EXPECT_TRUE(net.all_edges_usable());
}

TEST(Network, SpanRatioAndRho) {
  const Network net = make_triangle();
  // Link (0, 1): |span| = 1, |A(1)| = 2 -> 1/2.
  EXPECT_DOUBLE_EQ(net.span_ratio({0, 1}), 0.5);
  // Link (1, 0): |span| = 1, |A(0)| = 2 -> 1/2.
  EXPECT_DOUBLE_EQ(net.span_ratio({1, 0}), 0.5);
  // Link (0, 2): |span| = 2, |A(2)| = 3 -> 2/3.
  EXPECT_DOUBLE_EQ(net.span_ratio({0, 2}), 2.0 / 3.0);
  // Link (2, 0): |span| = 2, |A(0)| = 2 -> 1.
  EXPECT_DOUBLE_EQ(net.span_ratio({2, 0}), 1.0);
  // ρ = min span-ratio = 1/3? No: link (1,2) has |span|=2,|A(2)|=3 = 2/3;
  // minimum over all six links is 1/2.
  EXPECT_DOUBLE_EQ(net.min_span_ratio(), 0.5);
}

TEST(Network, EmptySpanEdgeExcludedFromLinks) {
  Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  // Nodes 1 and 2 share nothing.
  Network net(std::move(t), {ChannelSet(4, {0}), ChannelSet(4, {0, 1}),
                             ChannelSet(4, {2, 3})});
  EXPECT_EQ(net.links().size(), 2u);  // only {0,1} in both directions
  EXPECT_FALSE(net.all_edges_usable());
  EXPECT_EQ(net.span(1, 2).size(), 0u);
}

TEST(Network, HomogeneousCliqueParams) {
  const NodeId n = 6;
  Network net(make_clique(n),
              std::vector<ChannelSet>(n, ChannelSet::full(4)));
  EXPECT_EQ(net.max_channel_set_size(), 4u);
  EXPECT_EQ(net.max_channel_degree(), 5u);  // everyone neighbors everyone
  EXPECT_DOUBLE_EQ(net.min_span_ratio(), 1.0);
  EXPECT_EQ(net.links().size(), n * (n - 1));
}

TEST(Network, SingleNodeHasNoLinks) {
  const Network net(Topology(1), {ChannelSet(2, {0})});
  EXPECT_EQ(net.links().size(), 0u);
  EXPECT_EQ(net.max_channel_degree(), 0u);
  EXPECT_DOUBLE_EQ(net.min_span_ratio(), 1.0);
}

TEST(NetworkDeath, EmptyAvailableSetAborts) {
  Topology t(2);
  t.add_edge(0, 1);
  EXPECT_DEATH(
      Network(std::move(t), {ChannelSet(2, {0}), ChannelSet(2)}),
      "CHECK failed");
}

TEST(NetworkDeath, AssignmentSizeMismatchAborts) {
  EXPECT_DEATH(Network(Topology(2), {ChannelSet(2, {0})}), "CHECK failed");
}

TEST(NetworkDeath, MixedUniversesAbort) {
  EXPECT_DEATH(
      Network(Topology(2), {ChannelSet(2, {0}), ChannelSet(3, {0})}),
      "CHECK failed");
}

TEST(NetworkDeath, SpanOnNonEdgeAborts) {
  const Network net(Topology(2),
                    {ChannelSet(2, {0}), ChannelSet(2, {0})});
  EXPECT_DEATH((void)net.span(0, 1), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::net
