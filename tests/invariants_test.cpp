// Engine/bookkeeping invariants over randomized runs of every algorithm:
// whatever the policy does, the measurement machinery must stay coherent.
#include <gtest/gtest.h>

#include <memory>

#include "core/adaptive.hpp"
#include "core/algorithms.hpp"
#include "core/baseline_deterministic.hpp"
#include "core/competitors.hpp"
#include "runner/scenario.hpp"
#include "sim/async_engine.hpp"
#include "sim/slot_engine.hpp"

namespace m2hew {
namespace {

struct SyncCase {
  const char* name;
  sim::SyncPolicyFactory factory;
};

class SyncInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyncInvariants, HoldAcrossAlgorithmsAndScenarios) {
  const std::uint64_t seed = GetParam();
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kErdosRenyi;
  scenario.n = 12;
  scenario.er_edge_probability = 0.5;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 9;
  scenario.set_size = 4;
  scenario.asymmetric_drop = (seed % 2 == 0) ? 0.4 : 0.0;
  const net::Network network = runner::build_scenario(scenario, seed);

  const SyncCase cases[] = {
      {"alg1", core::make_algorithm1(8)},
      {"alg2", core::make_algorithm2()},
      {"alg3", core::make_algorithm3(8)},
      {"adaptive", core::make_adaptive()},
      {"baseline", core::make_universal_baseline(9, 0.5)},
      {"deterministic", core::make_deterministic_baseline(9)},
      {"mcdis", core::make_mcdis()},
      {"rendezvous", core::make_blind_rendezvous()},
      {"consistent-hop", core::make_consistent_hop()},
  };
  for (const SyncCase& test_case : cases) {
    sim::SlotEngineConfig config;
    config.max_slots = 800;
    config.seed = seed;
    config.stop_when_complete = false;
    const auto result =
        sim::run_slot_engine(network, test_case.factory, config);

    // Bookkeeping coherence.
    EXPECT_EQ(result.slots_executed, 800u) << test_case.name;
    EXPECT_LE(result.state.covered_links(), result.state.total_links())
        << test_case.name;
    EXPECT_EQ(result.complete,
              result.state.covered_links() == result.state.total_links())
        << test_case.name;
    EXPECT_GE(result.state.reception_count(), result.state.covered_links())
        << test_case.name;

    // Activity accounting: every node accounted for every slot.
    ASSERT_EQ(result.activity.size(), network.node_count());
    for (const sim::RadioActivity& a : result.activity) {
      EXPECT_EQ(a.total(), 800u) << test_case.name;
    }

    // Coverage times lie within the executed window and tables agree with
    // coverage counts.
    std::size_t table_entries = 0;
    for (net::NodeId u = 0; u < network.node_count(); ++u) {
      table_entries += result.state.neighbor_table(u).size();
    }
    EXPECT_EQ(table_entries, result.state.covered_links()) << test_case.name;
    for (const net::Link link : network.links()) {
      if (!result.state.is_covered(link)) continue;
      const double t = result.state.first_coverage_time(link);
      EXPECT_GE(t, 0.0) << test_case.name;
      EXPECT_LT(t, 800.0) << test_case.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyncInvariants,
                         ::testing::Values(1u, 2u, 3u, 4u));

class AsyncInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsyncInvariants, HoldUnderDrift) {
  const std::uint64_t seed = GetParam();
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kClique;
  scenario.n = 8;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 8;
  scenario.set_size = 4;
  const net::Network network = runner::build_scenario(scenario, seed);

  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_frames_per_node = 200;
  config.max_real_time = 1e9;
  config.seed = seed;
  config.stop_when_complete = false;
  config.clock_builder = [](net::NodeId, std::uint64_t clock_seed) {
    return std::make_unique<sim::PiecewiseDriftClock>(
        sim::PiecewiseDriftClock::Config{.max_drift = 1.0 / 7.0,
                                         .min_segment = 10.0,
                                         .max_segment = 50.0},
        clock_seed);
  };
  const auto result =
      sim::run_async_engine(network, core::make_algorithm4(8), config);

  ASSERT_EQ(result.frames_started.size(), network.node_count());
  ASSERT_EQ(result.activity.size(), network.node_count());
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    EXPECT_EQ(result.frames_started[u], 200u);
    EXPECT_EQ(result.activity[u].total(), 200u);
  }
  EXPECT_EQ(result.complete,
            result.state.covered_links() == result.state.total_links());
  if (result.complete) {
    ASSERT_EQ(result.full_frames_since_ts.size(), network.node_count());
    // Every node fits its counted full frames within ~200 real frames.
    for (const std::uint64_t frames : result.full_frames_since_ts) {
      EXPECT_LE(frames, 200u);
    }
    EXPECT_GE(result.completion_time, result.t_s);
  }
  // Coverage times never exceed the last possible frame end: real frame
  // length <= L/(1-delta) = 3.5, 200 frames, start offset 0.
  for (const net::Link link : network.links()) {
    if (!result.state.is_covered(link)) continue;
    EXPECT_LE(result.state.first_coverage_time(link), 200.0 * 3.5 + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncInvariants,
                         ::testing::Values(10u, 20u, 30u));

}  // namespace
}  // namespace m2hew
