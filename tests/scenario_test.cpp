#include "runner/scenario.hpp"

#include <gtest/gtest.h>

namespace m2hew::runner {
namespace {

TEST(Scenario, DefaultBuilds) {
  const net::Network network = build_scenario({}, 1);
  EXPECT_EQ(network.node_count(), 8u);
  EXPECT_TRUE(network.all_edges_usable());  // homogeneous channels
  EXPECT_DOUBLE_EQ(network.min_span_ratio(), 1.0);
}

TEST(Scenario, DeterministicForSameSeed) {
  ScenarioConfig config;
  config.topology = TopologyKind::kUnitDisk;
  config.n = 20;
  config.channels = ChannelKind::kUniformRandom;
  config.universe = 12;
  config.set_size = 5;
  const net::Network a = build_scenario(config, 7);
  const net::Network b = build_scenario(config, 7);
  EXPECT_EQ(a.topology().edge_count(), b.topology().edge_count());
  for (net::NodeId u = 0; u < 20; ++u) {
    EXPECT_EQ(a.available(u), b.available(u));
  }
  EXPECT_DOUBLE_EQ(a.min_span_ratio(), b.min_span_ratio());
}

TEST(Scenario, DifferentSeedsDiffer) {
  ScenarioConfig config;
  config.topology = TopologyKind::kErdosRenyi;
  config.n = 30;
  config.channels = ChannelKind::kUniformRandom;
  config.universe = 16;
  config.set_size = 4;
  const net::Network a = build_scenario(config, 1);
  const net::Network b = build_scenario(config, 2);
  bool any_difference = a.topology().edge_count() != b.topology().edge_count();
  for (net::NodeId u = 0; !any_difference && u < 30; ++u) {
    any_difference = !(a.available(u) == b.available(u));
  }
  EXPECT_TRUE(any_difference);
}

TEST(Scenario, ChainOverlapHasExactRho) {
  ScenarioConfig config;
  config.topology = TopologyKind::kLine;
  config.n = 6;
  config.channels = ChannelKind::kChainOverlap;
  config.set_size = 4;
  config.chain_overlap = 1;
  const net::Network network = build_scenario(config, 3);
  EXPECT_DOUBLE_EQ(network.min_span_ratio(), 0.25);
  EXPECT_TRUE(network.all_edges_usable());
}

TEST(Scenario, UniformRandomRespectsNonemptySpans) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 10;
  config.channels = ChannelKind::kUniformRandom;
  config.universe = 8;
  config.set_size = 4;
  config.require_nonempty_spans = true;
  const net::Network network = build_scenario(config, 5);
  EXPECT_TRUE(network.all_edges_usable());
}

TEST(Scenario, PrimaryUserScenarioBuilds) {
  ScenarioConfig config;
  config.topology = TopologyKind::kUnitDisk;
  config.n = 15;
  config.ud_radius = 0.5;
  config.channels = ChannelKind::kPrimaryUsers;
  config.universe = 10;
  config.pu_count = 6;
  config.pu_min_radius = 0.1;
  config.pu_max_radius = 0.3;
  const net::Network network = build_scenario(config, 11);
  EXPECT_EQ(network.node_count(), 15u);
  EXPECT_TRUE(network.all_edges_usable());
  for (net::NodeId u = 0; u < 15; ++u) {
    EXPECT_FALSE(network.available(u).empty());
  }
}

TEST(Scenario, VariableRandomSizesWithinRange) {
  ScenarioConfig config;
  config.topology = TopologyKind::kRing;
  config.n = 24;
  config.channels = ChannelKind::kVariableRandom;
  config.universe = 10;
  config.min_size = 3;
  config.max_size = 9;
  const net::Network network = build_scenario(config, 13);
  for (net::NodeId u = 0; u < 24; ++u) {
    EXPECT_GE(network.available(u).size(), 3u);
    EXPECT_LE(network.available(u).size(), 9u);
  }
}

TEST(Scenario, GridTopologyRespectsRows) {
  ScenarioConfig config;
  config.topology = TopologyKind::kGrid;
  config.n = 12;
  config.grid_rows = 3;
  const net::Network network = build_scenario(config, 17);
  EXPECT_EQ(network.node_count(), 12u);
  EXPECT_EQ(network.topology().edge_count(), 17u);  // 3×4 grid
}

TEST(Scenario, DescribeMentionsShape) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 9;
  const std::string text = describe(config);
  EXPECT_NE(text.find("clique"), std::string::npos);
  EXPECT_NE(text.find("n=9"), std::string::npos);
}

TEST(ScenarioDeath, ChainOverlapOffLineAborts) {
  ScenarioConfig config;
  config.topology = TopologyKind::kRing;
  config.channels = ChannelKind::kChainOverlap;
  EXPECT_DEATH((void)build_scenario(config, 1), "CHECK failed");
}

TEST(ScenarioDeath, PrimaryUsersWithoutGeometryAborts) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.channels = ChannelKind::kPrimaryUsers;
  EXPECT_DEATH((void)build_scenario(config, 1), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::runner
