#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace m2hew::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64, DifferentStatesDiverge) {
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  EXPECT_NE(splitmix64(a), splitmix64(b));
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, ZeroSeedIsNotDegenerate) {
  Xoshiro256 g(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(g());
  EXPECT_GT(seen.size(), 95u);  // distinct values, not a fixed point
}

TEST(Xoshiro256, JumpDecorrelatesStreams) {
  Xoshiro256 a(9);
  Xoshiro256 b(9);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(5);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(kBound)];
  const double expected = kDraws / static_cast<double>(kBound);
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

// Modulo-bias regression at a large bound. With bound = 3·2^62, a naive
// `next() % bound` folds the top quarter of the 64-bit range back onto
// [0, 2^62), giving the first third of the output range probability 1/2
// instead of 1/3 — a bias far outside any statistical noise. The
// multiply-shift rejection in Rng::uniform must keep all thirds at 1/3.
// Chi-squared with 2 degrees of freedom: 99.9th percentile is 13.8.
TEST(Rng, UniformUnbiasedAtLargeBound) {
  constexpr std::uint64_t kBound = 3ULL << 62;  // 0xC000000000000000
  constexpr std::uint64_t kThird = 1ULL << 62;
  constexpr int kDraws = 100000;
  Rng rng(0xB1A5ED);
  std::array<std::int64_t, 3> counts{};
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t x = rng.uniform(kBound);
    ASSERT_LT(x, kBound);
    ++counts[x / kThird];
  }
  const double expected = kDraws / 3.0;
  double chi2 = 0.0;
  for (const auto c : counts) {
    const double diff = static_cast<double>(c) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 13.8) << counts[0] << " " << counts[1] << " " << counts[2];
}

// Same check near the opposite hazard: a bound just above 2^63, where the
// acceptance region of a rejection sampler is barely over half the 64-bit
// range. Buckets are the two halves of [0, bound).
TEST(Rng, UniformUnbiasedJustAbovePowerOfTwo) {
  constexpr std::uint64_t kBound = (1ULL << 63) + (1ULL << 62);
  constexpr int kDraws = 100000;
  Rng rng(0xFEED);
  std::int64_t low = 0;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t x = rng.uniform(kBound);
    ASSERT_LT(x, kBound);
    if (x < kBound / 2) ++low;
  }
  const double expected = kDraws / 2.0;
  const double diff = static_cast<double>(low) - expected;
  const double chi2 = 2.0 * diff * diff / expected;
  EXPECT_LT(chi2, 10.8);  // chi² df=1, 99.9th percentile
}

TEST(Rng, UniformRangeInclusiveEndpointsReachable) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_range(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRangeSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_range(5, 5), 5);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformDoubleRangeAndMean) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.uniform_double(2.0, 6.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 6.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 4.0, 0.05);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(11);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(Rng, PickCoversAllElements) {
  Rng rng(12);
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.pick(std::span<const int>(items)));
  }
  EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()))
      << "50 elements should virtually never shuffle to identity";
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(SeedSequence, DerivedSeedsAreStable) {
  const SeedSequence seq(99);
  EXPECT_EQ(seq.derive(0), seq.derive(0));
  EXPECT_EQ(seq.derive(1, 2), seq.derive(1, 2));
}

TEST(SeedSequence, DerivedSeedsDiffer) {
  const SeedSequence seq(99);
  EXPECT_NE(seq.derive(0), seq.derive(1));
  EXPECT_NE(seq.derive(1, 2), seq.derive(2, 1));
  const SeedSequence other(100);
  EXPECT_NE(seq.derive(0), other.derive(0));
}

TEST(SeedSequence, ChildStreamsLookIndependent) {
  const SeedSequence seq(123);
  Rng a(seq.derive(0));
  Rng b(seq.derive(1));
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace m2hew::util
