#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace m2hew::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64, DifferentStatesDiverge) {
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  EXPECT_NE(splitmix64(a), splitmix64(b));
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, ZeroSeedIsNotDegenerate) {
  Xoshiro256 g(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(g());
  EXPECT_GT(seen.size(), 95u);  // distinct values, not a fixed point
}

TEST(Xoshiro256, JumpDecorrelatesStreams) {
  Xoshiro256 a(9);
  Xoshiro256 b(9);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(5);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(kBound)];
  const double expected = kDraws / static_cast<double>(kBound);
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, UniformRangeInclusiveEndpointsReachable) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_range(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRangeSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_range(5, 5), 5);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformDoubleRangeAndMean) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.uniform_double(2.0, 6.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 6.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 4.0, 0.05);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(11);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(Rng, PickCoversAllElements) {
  Rng rng(12);
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.pick(std::span<const int>(items)));
  }
  EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()))
      << "50 elements should virtually never shuffle to identity";
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(SeedSequence, DerivedSeedsAreStable) {
  const SeedSequence seq(99);
  EXPECT_EQ(seq.derive(0), seq.derive(0));
  EXPECT_EQ(seq.derive(1, 2), seq.derive(1, 2));
}

TEST(SeedSequence, DerivedSeedsDiffer) {
  const SeedSequence seq(99);
  EXPECT_NE(seq.derive(0), seq.derive(1));
  EXPECT_NE(seq.derive(1, 2), seq.derive(2, 1));
  const SeedSequence other(100);
  EXPECT_NE(seq.derive(0), other.derive(0));
}

TEST(SeedSequence, ChildStreamsLookIndependent) {
  const SeedSequence seq(123);
  Rng a(seq.derive(0));
  Rng b(seq.derive(1));
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace m2hew::util
