// Random-waypoint mobility (net/mobility.hpp): determinism of the
// seed-derived trajectory streams, the per-epoch displacement bound, the
// uniformity of the initial placement, a golden trajectory pinning the
// exact RNG consumption order (any change to the draw sequence is a
// silent break of recorded results — this test makes it loud), and the
// runner-level guarantee that mobile SoA trials aggregate identically at
// any worker count.
#include "net/mobility.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/policy_spec.hpp"
#include "net/topology_provider.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "sim/encounter.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

[[nodiscard]] net::MobilityConfig base_config(net::NodeId n) {
  net::MobilityConfig config;
  config.nodes = n;
  config.side = 1.0;
  config.radius = 0.35;
  config.speed_min = 0.05;
  config.speed_max = 0.1;
  config.pause_epochs = 1;
  config.epochs = 8;
  return config;
}

TEST(RandomWaypointModel, TrajectoriesAreDeterministic) {
  const net::MobilityConfig config = base_config(32);
  net::RandomWaypointModel a(config, 7);
  net::RandomWaypointModel b(config, 7);
  for (std::size_t e = 0; e < 10; ++e) {
    for (std::size_t u = 0; u < 32; ++u) {
      ASSERT_EQ(a.positions()[u].x, b.positions()[u].x)
          << "epoch " << e << " node " << u;
      ASSERT_EQ(a.positions()[u].y, b.positions()[u].y)
          << "epoch " << e << " node " << u;
    }
    a.advance_epoch();
    b.advance_epoch();
  }
}

TEST(RandomWaypointModel, NodeStreamsAreIndependentOfNodeCount) {
  // Node u draws only from derive(u, kMobilityStreamSalt), so adding
  // nodes must not perturb existing trajectories.
  net::RandomWaypointModel small(base_config(8), 13);
  net::RandomWaypointModel large(base_config(16), 13);
  for (std::size_t e = 0; e < 5; ++e) {
    for (std::size_t u = 0; u < 8; ++u) {
      ASSERT_EQ(small.positions()[u].x, large.positions()[u].x)
          << "epoch " << e << " node " << u;
      ASSERT_EQ(small.positions()[u].y, large.positions()[u].y)
          << "epoch " << e << " node " << u;
    }
    small.advance_epoch();
    large.advance_epoch();
  }
}

TEST(RandomWaypointModel, DisplacementBoundedBySpeedMaxAndSquare) {
  net::MobilityConfig config = base_config(64);
  config.speed_min = 0.03;
  config.speed_max = 0.07;
  config.pause_epochs = 2;
  net::RandomWaypointModel model(config, 29);
  std::vector<net::Point> prev(model.positions().begin(),
                               model.positions().end());
  for (std::size_t e = 0; e < 20; ++e) {
    model.advance_epoch();
    for (std::size_t u = 0; u < 64; ++u) {
      const net::Point p = model.positions()[u];
      const double dx = p.x - prev[u].x;
      const double dy = p.y - prev[u].y;
      EXPECT_LE(std::sqrt(dx * dx + dy * dy), config.speed_max + 1e-12)
          << "epoch " << e << " node " << u;
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, config.side);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, config.side);
      prev[u] = p;
    }
  }
}

TEST(RandomWaypointModel, ZeroSpeedFreezesPositions) {
  net::MobilityConfig config = base_config(16);
  config.speed_min = 0.0;
  config.speed_max = 0.0;
  net::RandomWaypointModel model(config, 3);
  const std::vector<net::Point> initial(model.positions().begin(),
                                        model.positions().end());
  for (std::size_t e = 0; e < 5; ++e) {
    model.advance_epoch();
    for (std::size_t u = 0; u < 16; ++u) {
      EXPECT_EQ(model.positions()[u].x, initial[u].x);
      EXPECT_EQ(model.positions()[u].y, initial[u].y);
    }
  }
}

// The initial placement is n independent uniform draws over the square
// (epoch-advanced positions are NOT uniform — RWP's stationary
// distribution concentrates toward the center — so the test targets
// epoch 0 only). Pearson chi-squared over a 4x4 grid: df = 15, the
// 99.9th percentile is 37.7; with a fixed seed the test is deterministic
// and 40 leaves margin while still catching gross non-uniformity or a
// broken stream split.
TEST(RandomWaypointModel, InitialPlacementIsUniform) {
  const net::NodeId n = 4096;
  const net::RandomWaypointModel model(base_config(n), 123);
  std::vector<std::size_t> bins(16, 0);
  for (std::size_t u = 0; u < n; ++u) {
    const net::Point p = model.positions()[u];
    const auto bx = std::min<std::size_t>(3, static_cast<std::size_t>(p.x * 4));
    const auto by = std::min<std::size_t>(3, static_cast<std::size_t>(p.y * 4));
    ++bins[4 * by + bx];
  }
  const double expected = static_cast<double>(n) / 16.0;
  double chi2 = 0.0;
  for (const std::size_t observed : bins) {
    const double d = static_cast<double>(observed) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 40.0) << "initial placement deviates from uniform";
}

// Golden trajectory: two nodes, seed 42, speeds in [0.1, 0.2], pause 1.
// The values pin the exact draw order of the per-node streams (waypoint
// x, waypoint y, speed, pause on arrival); reordering or adding a draw
// breaks reproducibility of every recorded mobile run, and must show up
// here rather than in a silently shifted benchmark.
TEST(RandomWaypointModel, GoldenTrajectory) {
  net::MobilityConfig config;
  config.nodes = 2;
  config.side = 1.0;
  config.radius = 0.35;
  config.speed_min = 0.1;
  config.speed_max = 0.2;
  config.pause_epochs = 1;
  config.epochs = 7;
  net::RandomWaypointModel model(config, 42);

  const net::Point golden[7][2] = {
      {{0.18558397413283134, 0.88587451944716189},
       {0.53922029537296301, 0.3052397070039008}},
      {{0.33531749200982297, 0.86881610035532308},
       {0.41868941629149692, 0.29853386917674357}},
      {{0.4850510098868146, 0.85175768126348428},
       {0.29815853721003083, 0.29182803134958635}},
      {{0.63478452776380623, 0.83469926217164547},
       {0.17762765812856474, 0.28512219352242907}},
      {{0.78451804564079786, 0.81764084307980667},
       {0.057096779047098645, 0.27841635569527184}},
      {{0.93425156351778949, 0.80058242398796797},
       {0.13275011741294726, 0.32269616885178753}},
      {{0.93526310579298177, 0.71783947386267688},
       {0.28802430360941972, 0.39826696826691771}},
  };
  for (std::size_t e = 0; e < 7; ++e) {
    for (std::size_t u = 0; u < 2; ++u) {
      EXPECT_DOUBLE_EQ(model.positions()[u].x, golden[e][u].x)
          << "epoch " << e << " node " << u;
      EXPECT_DOUBLE_EQ(model.positions()[u].y, golden[e][u].y)
          << "epoch " << e << " node " << u;
    }
    if (e + 1 < 7) model.advance_epoch();
  }
}

TEST(Mobility, ValidateAcceptsDefaultsAndRanges) {
  net::MobilityConfig config = base_config(8);
  net::validate_mobility_config(config);  // must not CHECK-fail
  config.speed_min = config.speed_max;    // degenerate band is legal
  net::validate_mobility_config(config);
}

// ---------------------------------------------------------------------------
// Runner-level determinism: mobile trials under --kernel=soa must
// aggregate identically at any worker count, including the encounter
// metrics (EncounterStats documents fill-in-trial-order).

void expect_same_mobile_stats(const runner::SyncTrialStats& a,
                              const runner::SyncTrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.completed, b.completed);
  const auto sa = a.completion_slots.summarize();
  const auto sb = b.completion_slots.summarize();
  EXPECT_DOUBLE_EQ(sa.mean, sb.mean);
  EXPECT_DOUBLE_EQ(sa.p95, sb.p95);
  EXPECT_EQ(a.encounters.trials, b.encounters.trials);
  EXPECT_EQ(a.encounters.contacts, b.encounters.contacts);
  EXPECT_EQ(a.encounters.detected, b.encounters.detected);
  EXPECT_EQ(a.encounters.detection_latency.count(),
            b.encounters.detection_latency.count());
  if (a.encounters.detection_latency.count() > 0) {
    EXPECT_DOUBLE_EQ(a.encounters.detection_latency.summarize().mean,
                     b.encounters.detection_latency.summarize().mean);
    EXPECT_DOUBLE_EQ(a.encounters.detection_latency.summarize().p90,
                     b.encounters.detection_latency.summarize().p90);
  }
  EXPECT_DOUBLE_EQ(a.encounters.missed_fraction.summarize().mean,
                   b.encounters.missed_fraction.summarize().mean);
  if (a.encounters.energy_per_detected.count() > 0) {
    EXPECT_DOUBLE_EQ(a.encounters.energy_per_detected.summarize().mean,
                     b.encounters.energy_per_detected.summarize().mean);
  }
}

[[nodiscard]] runner::SyncTrialConfig mobile_trial_config(
    const net::EpochTopologyProvider& provider,
    const sim::EncounterIndex& index, std::uint64_t epoch_slots) {
  runner::SyncTrialConfig config;
  config.trials = 12;
  config.seed = 5;
  config.engine.max_slots = 6 * epoch_slots;
  config.engine.topology = &provider;
  config.engine.epoch_length = epoch_slots;
  config.encounters = &index;
  return config;
}

TEST(MobileTrials, SerialMatchesParallelUnderSoa) {
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kUnitDisk;
  scenario.n = 24;
  scenario.ud_side = 1.0;
  scenario.ud_radius = 0.4;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 6;
  scenario.set_size = 3;
  runner::MobilitySpec mobility;
  mobility.enabled = true;
  mobility.epochs = 6;
  mobility.epoch_slots = 80;
  mobility.speed_min = 0.05;
  mobility.speed_max = 0.1;
  const auto provider = runner::build_mobility_provider(scenario, mobility, 77);
  const sim::EncounterIndex index(*provider, mobility.epoch_slots,
                                  6 * mobility.epoch_slots);

  runner::SyncTrialConfig config =
      mobile_trial_config(*provider, index, mobility.epoch_slots);
  config.kernel = runner::SyncKernel::kSoa;
  const core::SyncPolicySpec spec = core::SyncPolicySpec::algorithm3(8);

  config.threads = 1;
  const auto serial =
      runner::run_sync_trials(provider->union_network(), spec, config);
  config.threads = 4;
  const auto parallel =
      runner::run_sync_trials(provider->union_network(), spec, config);
  expect_same_mobile_stats(serial, parallel);
  EXPECT_TRUE(serial.encounters.enabled());
  EXPECT_GT(serial.encounters.contacts, 0u);
}

TEST(MobileTrials, EngineAndSoaKernelsAggregateIdentically) {
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kUnitDisk;
  scenario.n = 20;
  scenario.ud_side = 1.0;
  scenario.ud_radius = 0.45;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 6;
  scenario.set_size = 3;
  runner::MobilitySpec mobility;
  mobility.enabled = true;
  mobility.epochs = 5;
  mobility.epoch_slots = 60;
  mobility.speed_min = 0.02;
  mobility.speed_max = 0.08;
  const auto provider = runner::build_mobility_provider(scenario, mobility, 31);
  const sim::EncounterIndex index(*provider, mobility.epoch_slots,
                                  6 * mobility.epoch_slots);

  runner::SyncTrialConfig config =
      mobile_trial_config(*provider, index, mobility.epoch_slots);
  const core::SyncPolicySpec spec = core::SyncPolicySpec::algorithm2();

  config.kernel = runner::SyncKernel::kEngine;
  const auto engine =
      runner::run_sync_trials(provider->union_network(), spec, config);
  config.kernel = runner::SyncKernel::kSoa;
  const auto soa =
      runner::run_sync_trials(provider->union_network(), spec, config);
  expect_same_mobile_stats(engine, soa);
}

}  // namespace
}  // namespace m2hew
