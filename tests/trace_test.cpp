#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "net/topology_gen.hpp"
#include "sim/async_engine.hpp"
#include "sim/slot_engine.hpp"

namespace m2hew::sim {
namespace {

TEST(Trace, RecordAndQuery) {
  Trace trace;
  trace.record(1, 0, Mode::kTransmit, 3);
  trace.record(0, 0, Mode::kReceive, 2);
  trace.record(1, 1, Mode::kQuiet, net::kInvalidChannel);
  EXPECT_EQ(trace.size(), 3u);

  const auto node1 = trace.for_node(1);
  ASSERT_EQ(node1.size(), 2u);
  EXPECT_EQ(node1[0].index, 0u);
  EXPECT_EQ(node1[0].mode, Mode::kTransmit);
  EXPECT_EQ(node1[0].channel, 3u);
  EXPECT_EQ(node1[1].mode, Mode::kQuiet);

  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(Trace, TimelineRendering) {
  Trace trace;
  trace.record(0, 0, Mode::kTransmit, 5);
  trace.record(0, 1, Mode::kReceive, 0);
  trace.record(1, 0, Mode::kQuiet, net::kInvalidChannel);
  const std::string out = trace.render_timeline(0, 3);
  EXPECT_NE(out.find("node   0 |"), std::string::npos);
  EXPECT_NE(out.find("T5"), std::string::npos);
  EXPECT_NE(out.find("R0"), std::string::npos);
  EXPECT_NE(out.find('.'), std::string::npos);  // quiet and empty cells
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Trace, TimelineWindowFiltersIndices) {
  Trace trace;
  trace.record(0, 0, Mode::kTransmit, 1);
  trace.record(0, 10, Mode::kTransmit, 2);
  const std::string out = trace.render_timeline(5, 3);
  EXPECT_EQ(out.find("T1"), std::string::npos);
  EXPECT_EQ(out.find("T2"), std::string::npos);
}

TEST(Trace, EmptyTraceRendersNothing) {
  const Trace trace;
  EXPECT_TRUE(trace.render_timeline(0, 10).empty());
}

TEST(TracedSyncPolicy, RecordsEverySlotOfEveryNode) {
  const net::Network network(
      net::make_clique(3),
      std::vector<net::ChannelSet>(3, net::ChannelSet(2, {0, 1})));
  Trace trace;
  SlotEngineConfig config;
  config.max_slots = 25;
  config.stop_when_complete = false;
  const auto result = run_slot_engine(
      network, traced(core::make_algorithm3(4), trace), config);
  (void)result;
  EXPECT_EQ(trace.size(), 3u * 25u);
  for (net::NodeId u = 0; u < 3; ++u) {
    const auto entries = trace.for_node(u);
    ASSERT_EQ(entries.size(), 25u);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(entries[i].index, i);
      EXPECT_TRUE(network.available(u).contains(entries[i].channel));
    }
  }
}

TEST(TracedSyncPolicy, TraceMatchesEngineBehaviour) {
  // The traced run must behave identically to the untraced run (the
  // decorator may not perturb the RNG stream).
  const net::Network network(
      net::make_clique(4),
      std::vector<net::ChannelSet>(4, net::ChannelSet(2, {0, 1})));
  SlotEngineConfig config;
  config.max_slots = 100000;
  config.seed = 42;
  const auto plain =
      run_slot_engine(network, core::make_algorithm3(4), config);
  Trace trace;
  const auto traced_run = run_slot_engine(
      network, traced(core::make_algorithm3(4), trace), config);
  ASSERT_TRUE(plain.complete);
  ASSERT_TRUE(traced_run.complete);
  EXPECT_EQ(plain.completion_slot, traced_run.completion_slot);
}

TEST(TracedAsyncPolicy, RecordsFrames) {
  const net::Network network(
      net::make_clique(2),
      std::vector<net::ChannelSet>(2, net::ChannelSet(2, {0, 1})));
  Trace trace;
  AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_frames_per_node = 12;
  config.max_real_time = 1e6;
  config.stop_when_complete = false;
  (void)run_async_engine(network, traced(core::make_algorithm4(4), trace),
                         config);
  EXPECT_EQ(trace.size(), 2u * 12u);
}

}  // namespace
}  // namespace m2hew::sim
