// Cross-validation of the synchronous slot engine against an independent
// brute-force reference over randomized scripted instances (random
// topologies, channel sets, asymmetry, propagation masks, start slots and
// action scripts).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "net/channel_assign.hpp"
#include "net/propagation.hpp"
#include "net/topology_gen.hpp"
#include "sim/slot_engine.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

constexpr std::size_t kSlotCount = 150;

class ScriptPolicy final : public sim::SyncPolicy {
 public:
  explicit ScriptPolicy(std::vector<sim::SlotAction> script)
      : script_(std::move(script)) {}
  sim::SlotAction next_slot(util::Rng&) override {
    const sim::SlotAction a =
        index_ < script_.size() ? script_[index_] : sim::SlotAction{};
    ++index_;
    return a;
  }

 private:
  std::vector<sim::SlotAction> script_;
  std::size_t index_ = 0;
};

struct Instance {
  net::Network network;
  std::vector<std::vector<sim::SlotAction>> scripts;
  std::vector<std::uint64_t> start_slots;
};

[[nodiscard]] Instance make_instance(std::uint64_t seed, bool asymmetric,
                                     bool masked) {
  util::Rng rng(seed);
  net::Topology topology = net::make_erdos_renyi(8, 0.6, rng);
  if (asymmetric) topology = net::make_asymmetric(topology, 0.5, rng);
  auto assignment = net::uniform_random_assignment(8, 5, 3, rng);
  net::Network network =
      masked ? net::Network(std::move(topology), std::move(assignment),
                            net::random_propagation_filter(5, 0.7, seed))
             : net::Network(std::move(topology), std::move(assignment));

  Instance inst{std::move(network), {}, {}};
  for (net::NodeId u = 0; u < inst.network.node_count(); ++u) {
    const auto channels = inst.network.available(u).to_vector();
    std::vector<sim::SlotAction> script;
    script.reserve(kSlotCount);
    for (std::size_t t = 0; t < kSlotCount; ++t) {
      sim::SlotAction action;
      const double dice = rng.uniform_double();
      action.mode = dice < 0.45   ? sim::Mode::kTransmit
                    : dice < 0.95 ? sim::Mode::kReceive
                                  : sim::Mode::kQuiet;
      if (action.mode != sim::Mode::kQuiet) {
        action.channel = rng.pick(std::span<const net::ChannelId>(channels));
      }
      script.push_back(action);
    }
    inst.scripts.push_back(std::move(script));
    inst.start_slots.push_back(rng.uniform(20));
  }
  return inst;
}

// Brute-force recomputation of every reception, straight from the model:
// u (listening on c in global slot t) hears v iff v is the unique
// in-neighbor of u transmitting on c in t whose arc carries c.
[[nodiscard]] std::map<std::pair<net::NodeId, net::NodeId>, double>
reference_run(const Instance& inst) {
  const net::NodeId n = inst.network.node_count();
  std::map<std::pair<net::NodeId, net::NodeId>, double> first;
  auto action_of = [&](net::NodeId u, std::uint64_t slot) -> sim::SlotAction {
    if (slot < inst.start_slots[u]) return {};
    const std::uint64_t local = slot - inst.start_slots[u];
    if (local >= kSlotCount) return {};
    return inst.scripts[u][local];
  };
  for (std::uint64_t slot = 0; slot < kSlotCount + 20; ++slot) {
    for (net::NodeId u = 0; u < n; ++u) {
      const sim::SlotAction mine = action_of(u, slot);
      if (mine.mode != sim::Mode::kReceive) continue;
      net::NodeId sender = net::kInvalidNode;
      int audible = 0;
      for (net::NodeId v = 0; v < n; ++v) {
        if (v == u || !inst.network.topology().has_arc(v, u)) continue;
        const sim::SlotAction theirs = action_of(v, slot);
        if (theirs.mode != sim::Mode::kTransmit ||
            theirs.channel != mine.channel) {
          continue;
        }
        if (!inst.network.span(v, u).contains(mine.channel)) continue;
        ++audible;
        sender = v;
      }
      if (audible != 1) continue;
      const auto key = std::make_pair(sender, u);
      if (first.find(key) == first.end()) {
        first[key] = static_cast<double>(slot);
      }
    }
  }
  return first;
}

class SyncReference
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool, bool>> {
};

TEST_P(SyncReference, EngineMatchesBruteForce) {
  const auto [seed, asymmetric, masked] = GetParam();
  const Instance inst = make_instance(seed, asymmetric, masked);

  sim::SlotEngineConfig config;
  config.max_slots = kSlotCount + 20;
  config.starts = inst.start_slots;
  config.stop_when_complete = false;
  const auto scripts = inst.scripts;
  const sim::SyncPolicyFactory factory =
      [&scripts](const net::Network&, net::NodeId u)
      -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<ScriptPolicy>(scripts[u]);
  };
  const auto engine = sim::run_slot_engine(inst.network, factory, config);

  const auto reference = reference_run(inst);
  std::size_t checked = 0;
  for (const net::Link link : inst.network.links()) {
    const auto it = reference.find(std::make_pair(link.from, link.to));
    const bool ref_covered = it != reference.end();
    ASSERT_EQ(engine.state.is_covered(link), ref_covered)
        << "link " << link.from << "->" << link.to;
    if (ref_covered) {
      EXPECT_DOUBLE_EQ(engine.state.first_coverage_time(link), it->second);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SyncReference,
    ::testing::Combine(::testing::Values(10u, 20u, 30u, 40u, 50u),
                       ::testing::Bool(), ::testing::Bool()));

}  // namespace
}  // namespace m2hew
