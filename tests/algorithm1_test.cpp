#include "core/algorithm1.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/transmit_probability.hpp"
#include "util/rng.hpp"

namespace m2hew::core {
namespace {

TEST(Algorithm1, StageLengthFromDeltaEst) {
  const net::ChannelSet a(8, {0, 1, 2});
  EXPECT_EQ(Algorithm1Policy(a, 2).stage_slots(), 1u);
  EXPECT_EQ(Algorithm1Policy(a, 8).stage_slots(), 3u);
  EXPECT_EQ(Algorithm1Policy(a, 9).stage_slots(), 4u);
}

TEST(Algorithm1, ChannelsAlwaysFromAvailableSet) {
  const net::ChannelSet a(16, {2, 7, 11});
  Algorithm1Policy policy(a, 8);
  util::Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto action = policy.next_slot(rng);
    EXPECT_TRUE(a.contains(action.channel));
    EXPECT_NE(action.mode, sim::Mode::kQuiet);
  }
}

TEST(Algorithm1, ChannelChoiceIsUniform) {
  const net::ChannelSet a(16, {2, 7, 11});
  Algorithm1Policy policy(a, 8);
  util::Rng rng(2);
  std::map<net::ChannelId, int> counts;
  constexpr int kSlots = 60000;
  for (int i = 0; i < kSlots; ++i) ++counts[policy.next_slot(rng).channel];
  for (const auto& [channel, count] : counts) {
    EXPECT_NEAR(count, kSlots / 3.0, 600.0) << "channel " << channel;
  }
}

TEST(Algorithm1, TransmitRateFollowsStageSchedule) {
  // |A| = 4, Δ_est = 64 -> 6 slots per stage; expected p per slot position:
  // min(1/2, 4/2^i) = {1/2, 1/2, 1/2, 1/4, 1/8, 1/16}.
  const net::ChannelSet a(8, {0, 1, 2, 3});
  Algorithm1Policy policy(a, 64);
  ASSERT_EQ(policy.stage_slots(), 6u);
  util::Rng rng(3);
  constexpr int kStages = 40000;
  std::vector<int> transmissions(6, 0);
  for (int s = 0; s < kStages; ++s) {
    for (unsigned i = 0; i < 6; ++i) {
      if (policy.next_slot(rng).mode == sim::Mode::kTransmit) {
        ++transmissions[i];
      }
    }
  }
  for (unsigned i = 0; i < 6; ++i) {
    const double expected = alg1_slot_probability(4, i + 1);
    const double observed =
        transmissions[i] / static_cast<double>(kStages);
    EXPECT_NEAR(observed, expected, 0.012) << "slot " << (i + 1);
  }
}

TEST(Algorithm1, StageScheduleRepeats) {
  // With Δ_est = 4 (2 slots/stage) and |A| = 8, slot probabilities are
  // 1/2, 1/2 in both stage positions — the schedule itself is verified
  // through the deterministic stage counter by exhausting several stages.
  const net::ChannelSet a(16, {0, 1, 2, 3, 4, 5, 6, 7});
  Algorithm1Policy policy(a, 4);
  EXPECT_EQ(policy.stage_slots(), 2u);
  util::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    (void)policy.next_slot(rng);  // must not run off the stage counter
  }
}

TEST(Algorithm1Death, EmptyAvailableSetAborts) {
  const net::ChannelSet empty(4);
  EXPECT_DEATH(Algorithm1Policy(empty, 4), "CHECK failed");
}

TEST(Algorithm1Death, ZeroDeltaEstAborts) {
  const net::ChannelSet a(4, {0});
  EXPECT_DEATH(Algorithm1Policy(a, 0), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::core
