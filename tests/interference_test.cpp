// Dynamic primary-user interference: the schedule model, its geometric
// helper, and the slot-engine semantics (transmitter vacating + receiver
// jamming + collision-feedback interaction).
#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "net/primary_user.hpp"
#include "net/topology_gen.hpp"
#include "sim/slot_engine.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

TEST(DynamicPrimaryUser, ActivityWindows) {
  net::DynamicPrimaryUser pu;
  pu.period_slots = 10;
  pu.on_slots = 3;
  pu.phase_slots = 0;
  EXPECT_TRUE(pu.active_at(0));
  EXPECT_TRUE(pu.active_at(2));
  EXPECT_FALSE(pu.active_at(3));
  EXPECT_FALSE(pu.active_at(9));
  EXPECT_TRUE(pu.active_at(10));
}

TEST(DynamicPrimaryUser, PhaseShiftsWindow) {
  net::DynamicPrimaryUser pu;
  pu.period_slots = 10;
  pu.on_slots = 3;
  pu.phase_slots = 8;
  // (slot + 8) % 10 < 3  ->  slots 2,3,4 are ON within each period.
  EXPECT_FALSE(pu.active_at(0));
  EXPECT_TRUE(pu.active_at(2));
  EXPECT_TRUE(pu.active_at(4));
  EXPECT_FALSE(pu.active_at(5));
}

TEST(DynamicPrimaryUserField, OccupiedRespectsGeometryAndTime) {
  net::DynamicPrimaryUser pu;
  pu.user = {{0.0, 0.0}, 1.0, 2};
  pu.period_slots = 4;
  pu.on_slots = 2;
  const net::DynamicPrimaryUserField field(4, {pu});
  EXPECT_TRUE(field.occupied(0, {0.5, 0.0}, 2));
  EXPECT_FALSE(field.occupied(0, {0.5, 0.0}, 1));   // other channel
  EXPECT_FALSE(field.occupied(0, {5.0, 5.0}, 2));   // out of range
  EXPECT_FALSE(field.occupied(2, {0.5, 0.0}, 2));   // PU off
}

TEST(DynamicPrimaryUserField, RandomFieldRespectsDuty) {
  util::Rng rng(1);
  const auto field = net::DynamicPrimaryUserField::random(
      8, 20, 1.0, 0.1, 0.3, /*period=*/100, /*duty=*/0.25, rng);
  for (const auto& pu : field.users()) {
    EXPECT_EQ(pu.period_slots, 100u);
    EXPECT_EQ(pu.on_slots, 25u);
    EXPECT_LT(pu.phase_slots, 100u);
    EXPECT_LT(pu.user.channel, 8u);
  }
}

TEST(DynamicPrimaryUserField, InterferenceScheduleMatchesOccupied) {
  util::Rng rng(2);
  const auto field = net::DynamicPrimaryUserField::random(
      6, 10, 1.0, 0.2, 0.5, 50, 0.5, rng);
  const std::vector<net::Point> positions{{0.2, 0.2}, {0.8, 0.8}};
  const auto schedule = field.interference_for(positions);
  for (std::uint64_t slot = 0; slot < 120; slot += 7) {
    for (net::NodeId u = 0; u < 2; ++u) {
      for (net::ChannelId c = 0; c < 6; ++c) {
        EXPECT_EQ(schedule(slot, u, c), field.occupied(slot, positions[u], c))
            << "slot=" << slot << " u=" << u << " c=" << c;
      }
    }
  }
}

// --- Engine semantics under interference ---

// Shared recording state: outcomes must outlive the engine-owned policies.
struct FixedFactoryState {
  std::vector<sim::SlotAction> actions;
  std::vector<std::vector<sim::ListenOutcome>> outcomes;
};

class FixedPolicy final : public sim::SyncPolicy {
 public:
  FixedPolicy(sim::SlotAction action,
              std::vector<sim::ListenOutcome>* outcomes)
      : action_(action), outcomes_(outcomes) {}
  sim::SlotAction next_slot(util::Rng&) override { return action_; }
  void observe_listen_outcome(sim::ListenOutcome outcome) override {
    outcomes_->push_back(outcome);
  }

 private:
  sim::SlotAction action_;
  std::vector<sim::ListenOutcome>* outcomes_;
};

[[nodiscard]] sim::SyncPolicyFactory fixed_factory(
    std::shared_ptr<FixedFactoryState> state) {
  state->outcomes.resize(state->actions.size());
  return [state](const net::Network&, net::NodeId u)
             -> std::unique_ptr<sim::SyncPolicy> {
    return std::make_unique<FixedPolicy>(state->actions[u],
                                         &state->outcomes[u]);
  };
}

[[nodiscard]] net::Network pair_net() {
  net::Topology t(2);
  t.add_edge(0, 1);
  return net::Network(std::move(t), std::vector<net::ChannelSet>(
                                        2, net::ChannelSet(2, {0, 1})));
}

TEST(InterferenceEngine, JammedReceiverHearsNoise) {
  const net::Network network = pair_net();
  sim::SlotEngineConfig config;
  config.max_slots = 4;
  config.stop_when_complete = false;
  config.interference = [](std::uint64_t, net::NodeId node,
                           net::ChannelId channel) {
    return node == 1 && channel == 0;  // PU audible at node 1 on channel 0
  };
  auto state = std::make_shared<FixedFactoryState>();
  state->actions = {{sim::Mode::kTransmit, 0}, {sim::Mode::kReceive, 0}};
  const auto result =
      sim::run_slot_engine(network, fixed_factory(state), config);
  EXPECT_EQ(result.state.covered_links(), 0u);
  // The jammed listener perceives collision-like noise every slot.
  ASSERT_EQ(state->outcomes[1].size(), 4u);
  for (const auto outcome : state->outcomes[1]) {
    EXPECT_EQ(outcome, sim::ListenOutcome::kCollision);
  }
}

TEST(InterferenceEngine, JammedTransmitterVacates) {
  const net::Network network = pair_net();
  sim::SlotEngineConfig config;
  config.max_slots = 4;
  config.stop_when_complete = false;
  config.interference = [](std::uint64_t, net::NodeId node,
                           net::ChannelId channel) {
    return node == 0 && channel == 0;  // PU at the transmitter
  };
  auto state = std::make_shared<FixedFactoryState>();
  state->actions = {{sim::Mode::kTransmit, 0}, {sim::Mode::kReceive, 0}};
  const auto result =
      sim::run_slot_engine(network, fixed_factory(state), config);
  EXPECT_EQ(result.state.covered_links(), 0u);
  // The receiver hears pure silence (the transmitter vacated; no PU here).
  for (const auto outcome : state->outcomes[1]) {
    EXPECT_EQ(outcome, sim::ListenOutcome::kSilence);
  }
  // The vacated transmitter's slots are accounted as quiet.
  EXPECT_EQ(result.activity[0].quiet, 4u);
  EXPECT_EQ(result.activity[0].transmit, 0u);
}

TEST(InterferenceEngine, OtherChannelsUnaffected) {
  const net::Network network = pair_net();
  sim::SlotEngineConfig config;
  config.max_slots = 2;
  config.stop_when_complete = false;
  config.interference = [](std::uint64_t, net::NodeId,
                           net::ChannelId channel) { return channel == 0; };
  auto state = std::make_shared<FixedFactoryState>();
  state->actions = {{sim::Mode::kTransmit, 1}, {sim::Mode::kReceive, 1}};
  const auto result =
      sim::run_slot_engine(network, fixed_factory(state), config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
}

TEST(InterferenceEngine, ListenOutcomesWithoutInterference) {
  // Sanity of the feedback channel itself: a listener sees kSilence when
  // nobody transmits and kClear on a clean message.
  const net::Network network = pair_net();
  sim::SlotEngineConfig config;
  config.max_slots = 1;
  config.stop_when_complete = false;
  auto state = std::make_shared<FixedFactoryState>();
  state->actions = {{sim::Mode::kReceive, 0}, {sim::Mode::kReceive, 0}};
  (void)sim::run_slot_engine(network, fixed_factory(state), config);
  ASSERT_EQ(state->outcomes[0].size(), 1u);
  EXPECT_EQ(state->outcomes[0][0], sim::ListenOutcome::kSilence);

  auto state2 = std::make_shared<FixedFactoryState>();
  state2->actions = {{sim::Mode::kTransmit, 0}, {sim::Mode::kReceive, 0}};
  (void)sim::run_slot_engine(network, fixed_factory(state2), config);
  ASSERT_EQ(state2->outcomes[1].size(), 1u);
  EXPECT_EQ(state2->outcomes[1][0], sim::ListenOutcome::kClear);
}

TEST(InterferenceEngine, CollisionOutcomeReported) {
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(1, {0})));
  sim::SlotEngineConfig config;
  config.max_slots = 1;
  config.stop_when_complete = false;
  auto state = std::make_shared<FixedFactoryState>();
  state->actions = {{sim::Mode::kReceive, 0},
                    {sim::Mode::kTransmit, 0},
                    {sim::Mode::kTransmit, 0}};
  (void)sim::run_slot_engine(network, fixed_factory(state), config);
  ASSERT_EQ(state->outcomes[0].size(), 1u);
  EXPECT_EQ(state->outcomes[0][0], sim::ListenOutcome::kCollision);
}

TEST(InterferenceIntegration, DiscoveryCompletesUnderDynamicPUs) {
  util::Rng rng(4);
  const auto geo = net::make_connected_unit_disk(10, 1.0, 0.5, rng);
  const net::Network network(
      geo.topology,
      std::vector<net::ChannelSet>(10, net::ChannelSet::full(6)));
  const auto field = net::DynamicPrimaryUserField::random(
      6, 8, 1.0, 0.2, 0.4, 200, 0.5, rng);
  sim::SlotEngineConfig config;
  config.max_slots = 2'000'000;
  config.seed = 5;
  config.interference = field.interference_for(geo.positions);
  const auto result = sim::run_slot_engine(
      network, core::make_algorithm3(8), config);
  ASSERT_TRUE(result.complete);
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    EXPECT_TRUE(result.state.table_matches_ground_truth(u));
  }
}

}  // namespace
}  // namespace m2hew
