// §V extension (a): asymmetric communication graphs — directed arcs in the
// topology, directional ground truth, and one-way reception/interference in
// both engines.
#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "net/propagation.hpp"
#include "net/topology_gen.hpp"
#include "sim/async_engine.hpp"
#include "sim/slot_engine.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

TEST(TopologyArcs, AddArcIsOneWay) {
  net::Topology t(3);
  t.add_arc(0, 1);
  t.finalize();
  EXPECT_TRUE(t.has_arc(0, 1));
  EXPECT_FALSE(t.has_arc(1, 0));
  EXPECT_FALSE(t.has_edge(0, 1));
  EXPECT_EQ(t.arc_count(), 1u);
  EXPECT_EQ(t.out_degree(0), 1u);
  EXPECT_EQ(t.in_degree(0), 0u);
  EXPECT_EQ(t.in_degree(1), 1u);
  EXPECT_FALSE(t.is_symmetric());
}

TEST(TopologyArcs, AddEdgeIsTwoArcs) {
  net::Topology t(2);
  t.add_edge(0, 1);
  t.finalize();
  EXPECT_EQ(t.arc_count(), 2u);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.is_symmetric());
}

TEST(TopologyArcs, InAndOutNeighborsDiffer) {
  net::Topology t(4);
  t.add_arc(0, 2);
  t.add_arc(1, 2);
  t.add_arc(2, 3);
  t.finalize();
  const auto in2 = t.in_neighbors(2);
  ASSERT_EQ(in2.size(), 2u);
  EXPECT_EQ(in2[0], 0u);
  EXPECT_EQ(in2[1], 1u);
  const auto out2 = t.out_neighbors(2);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0], 3u);
}

TEST(TopologyArcs, EdgesDeduplicatesArcPairs) {
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_arc(1, 2);
  const auto edges = t.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(net::NodeId{0}, net::NodeId{1}));
  EXPECT_EQ(edges[1], std::make_pair(net::NodeId{1}, net::NodeId{2}));
}

TEST(TopologyArcs, ConnectivityUsesUndirectedView) {
  net::Topology t(3);
  t.add_arc(0, 1);
  t.add_arc(2, 1);  // no directed path 0 -> 2, but weakly connected
  t.finalize();
  EXPECT_TRUE(t.is_connected());
}

TEST(TopologyArcsDeath, DuplicateArcAborts) {
  net::Topology t(2);
  t.add_arc(0, 1);
  EXPECT_DEATH(t.add_arc(0, 1), "CHECK failed");
}

TEST(MakeAsymmetric, ZeroDropKeepsSymmetry) {
  util::Rng rng(1);
  const net::Topology sym = net::make_clique(6);
  const net::Topology out = net::make_asymmetric(sym, 0.0, rng);
  EXPECT_TRUE(out.is_symmetric());
  EXPECT_EQ(out.arc_count(), sym.arc_count());
}

TEST(MakeAsymmetric, FullDropKeepsOneDirectionPerEdge) {
  util::Rng rng(2);
  const net::Topology sym = net::make_clique(6);
  const net::Topology out = net::make_asymmetric(sym, 1.0, rng);
  EXPECT_EQ(out.arc_count(), sym.edge_count());
  EXPECT_FALSE(out.is_symmetric());
  // Exactly one direction survives per pair.
  for (const auto& [u, v] : sym.edges()) {
    EXPECT_NE(out.has_arc(u, v), out.has_arc(v, u));
  }
}

TEST(MakeAsymmetricDeath, AsymmetricInputAborts) {
  net::Topology t(2);
  t.add_arc(0, 1);
  util::Rng rng(3);
  EXPECT_DEATH((void)net::make_asymmetric(t, 0.5, rng), "CHECK failed");
}

TEST(NewGenerators, WattsStrogatzShape) {
  util::Rng rng(4);
  const net::Topology t = net::make_watts_strogatz(30, 4, 0.0, rng);
  // beta = 0: pure ring lattice, every node has degree 4.
  EXPECT_EQ(t.node_count(), 30u);
  for (net::NodeId u = 0; u < 30; ++u) EXPECT_EQ(t.degree(u), 4u);
  EXPECT_TRUE(t.is_connected());
  EXPECT_TRUE(t.is_symmetric());
}

TEST(NewGenerators, WattsStrogatzRewiringChangesStructure) {
  util::Rng rng(5);
  const net::Topology lattice = net::make_watts_strogatz(40, 4, 0.0, rng);
  const net::Topology rewired = net::make_watts_strogatz(40, 4, 0.8, rng);
  // Rewired graph must differ from the lattice on some pair.
  bool differs = false;
  for (net::NodeId u = 0; u < 40 && !differs; ++u) {
    for (net::NodeId v = u + 1; v < 40 && !differs; ++v) {
      differs = lattice.has_edge(u, v) != rewired.has_edge(u, v);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(NewGenerators, BarabasiAlbertHubsEmerge) {
  util::Rng rng(6);
  const net::Topology t = net::make_barabasi_albert(100, 2, rng);
  EXPECT_EQ(t.node_count(), 100u);
  EXPECT_TRUE(t.is_connected());
  EXPECT_TRUE(t.is_symmetric());
  // Preferential attachment: the max degree far exceeds the minimum (m).
  EXPECT_GE(t.max_degree(), 8u);
  std::size_t min_degree = 100;
  for (net::NodeId u = 0; u < 100; ++u) {
    min_degree = std::min(min_degree, t.degree(u));
  }
  EXPECT_GE(min_degree, 2u);
}

// --- Network-level semantics on directed graphs ---

[[nodiscard]] net::Network one_way_pair() {
  net::Topology t(2);
  t.add_arc(0, 1);  // only 0 -> 1
  return net::Network(std::move(t), std::vector<net::ChannelSet>(
                                        2, net::ChannelSet(2, {0, 1})));
}

TEST(AsymmetricNetwork, GroundTruthIsDirectional) {
  const net::Network network = one_way_pair();
  ASSERT_EQ(network.links().size(), 1u);
  EXPECT_EQ(network.links()[0], (net::Link{0, 1}));
  EXPECT_EQ(network.in_links(1).size(), 1u);
  EXPECT_EQ(network.in_links(0).size(), 0u);
}

TEST(AsymmetricNetwork, DegreeCountsInNeighbors) {
  net::Topology t(3);
  t.add_arc(0, 2);
  t.add_arc(1, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(1, {0})));
  EXPECT_EQ(network.degree_on_channel(2, 0), 2u);
  EXPECT_EQ(network.degree_on_channel(0, 0), 0u);
  EXPECT_EQ(network.max_channel_degree(), 2u);
}

// Scripted policies for engine-level checks.
class FixedPolicy final : public sim::SyncPolicy {
 public:
  explicit FixedPolicy(sim::SlotAction action) : action_(action) {}
  sim::SlotAction next_slot(util::Rng&) override { return action_; }

 private:
  sim::SlotAction action_;
};

[[nodiscard]] sim::SyncPolicyFactory fixed(
    std::vector<sim::SlotAction> per_node) {
  auto shared =
      std::make_shared<std::vector<sim::SlotAction>>(std::move(per_node));
  return [shared](const net::Network&, net::NodeId u) {
    return std::make_unique<FixedPolicy>((*shared)[u]);
  };
}

TEST(AsymmetricSlotEngine, OneWayLinkDeliversOneWayOnly) {
  const net::Network network = one_way_pair();
  sim::SlotEngineConfig config;
  config.max_slots = 2;
  config.stop_when_complete = false;
  // Node 0 transmits while node 1 listens: (0,1) covered; the reverse can
  // never be (and is not even a link).
  const auto result = sim::run_slot_engine(
      network, fixed({{sim::Mode::kTransmit, 0}, {sim::Mode::kReceive, 0}}),
      config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
  EXPECT_TRUE(result.complete);  // the single link is the whole ground truth
}

TEST(AsymmetricSlotEngine, ReverseDirectionHearsNothing) {
  const net::Network network = one_way_pair();
  sim::SlotEngineConfig config;
  config.max_slots = 5;
  config.stop_when_complete = false;
  // Node 1 transmits, node 0 listens: no arc 1 -> 0, nothing happens.
  const auto result = sim::run_slot_engine(
      network, fixed({{sim::Mode::kReceive, 0}, {sim::Mode::kTransmit, 0}}),
      config);
  EXPECT_EQ(result.state.covered_links(), 0u);
  EXPECT_EQ(result.state.reception_count(), 0u);
}

TEST(AsymmetricSlotEngine, OneWayInterfererStillCollides) {
  // 1 -> 0 and 2 -> 0: both transmissions reach 0 and collide there even
  // though 0 cannot talk back.
  net::Topology t(3);
  t.add_arc(1, 0);
  t.add_arc(2, 0);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(1, {0})));
  sim::SlotEngineConfig config;
  config.max_slots = 3;
  config.stop_when_complete = false;
  const auto result = sim::run_slot_engine(
      network,
      fixed({{sim::Mode::kReceive, 0},
             {sim::Mode::kTransmit, 0},
             {sim::Mode::kTransmit, 0}}),
      config);
  EXPECT_EQ(result.state.covered_links(), 0u);
}

TEST(PropagationSlotEngine, MaskedChannelNeitherDeliversNorInterferes) {
  // Star: 1 -> 0 carries channel 0 only; 2 -> 0 is fully masked. When both
  // transmit on channel 0, node 2's signal does not reach 0 at all, so 1
  // is received cleanly (no collision).
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  const net::ChannelSet all = net::ChannelSet::full(1);
  const net::PropagationFilter filter = [](net::NodeId from, net::NodeId to) {
    const bool involves2 = from == 2 || to == 2;
    return involves2 ? net::ChannelSet(1) : net::ChannelSet::full(1);
  };
  const net::Network network(std::move(t), {all, all, all}, filter);
  ASSERT_EQ(network.links().size(), 2u);  // 0<->1 only
  sim::SlotEngineConfig config;
  config.max_slots = 1;
  config.stop_when_complete = false;
  const auto result = sim::run_slot_engine(
      network,
      fixed({{sim::Mode::kReceive, 0},
             {sim::Mode::kTransmit, 0},
             {sim::Mode::kTransmit, 0}}),
      config);
  EXPECT_TRUE(result.state.is_covered({1, 0}));
}

// --- End-to-end discovery on asymmetric / propagation-limited networks ---

TEST(AsymmetricIntegration, Algorithm3DiscoversAllDirectedLinks) {
  util::Rng rng(7);
  const net::Topology sym = net::make_clique(8);
  net::Topology asym = net::make_asymmetric(sym, 0.5, rng);
  const net::Network network(
      std::move(asym),
      std::vector<net::ChannelSet>(8, net::ChannelSet(4, {0, 1, 2, 3})));
  sim::SlotEngineConfig config;
  config.max_slots = 500000;
  config.seed = 8;
  const auto result =
      sim::run_slot_engine(network, core::make_algorithm3(8), config);
  ASSERT_TRUE(result.complete);
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    EXPECT_TRUE(result.state.table_matches_ground_truth(u));
  }
}

TEST(AsymmetricIntegration, Algorithm4DiscoversOverMaskedSpectrum) {
  util::Rng rng(9);
  const net::Topology sym = net::make_clique(6);
  net::Topology asym = net::make_asymmetric(sym, 0.4, rng);
  const net::Network network(
      std::move(asym),
      std::vector<net::ChannelSet>(6, net::ChannelSet::full(6)),
      net::random_propagation_filter(6, 0.6, 11));
  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 3e6;
  config.seed = 10;
  const auto result =
      sim::run_async_engine(network, core::make_algorithm4(6), config);
  ASSERT_TRUE(result.complete);
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    EXPECT_TRUE(result.state.table_matches_ground_truth(u));
  }
}

}  // namespace
}  // namespace m2hew
