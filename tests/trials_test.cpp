#include "runner/trials.hpp"

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "runner/scenario.hpp"

namespace m2hew::runner {
namespace {

[[nodiscard]] net::Network small_net() {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 5;
  config.channels = ChannelKind::kHomogeneous;
  config.universe = 3;
  config.set_size = 3;
  return build_scenario(config, 1);
}

TEST(SyncTrials, AllTrialsCompleteWithGenerousBudget) {
  const net::Network network = small_net();
  SyncTrialConfig config;
  config.trials = 10;
  config.engine.max_slots = 100000;
  const SyncTrialStats stats =
      run_sync_trials(network, core::make_algorithm1(8), config);
  EXPECT_EQ(stats.trials, 10u);
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_DOUBLE_EQ(stats.success_rate(), 1.0);
  EXPECT_EQ(stats.completion_slots.count(), 10u);
  EXPECT_GT(stats.completion_slots.summarize().mean, 0.0);
}

TEST(SyncTrials, TinyBudgetFailsTrials) {
  const net::Network network = small_net();
  SyncTrialConfig config;
  config.trials = 5;
  config.engine.max_slots = 1;
  const SyncTrialStats stats =
      run_sync_trials(network, core::make_algorithm1(8), config);
  EXPECT_LT(stats.success_rate(), 1.0);
}

TEST(SyncTrials, TrialsAreIndependentButSeeded) {
  const net::Network network = small_net();
  SyncTrialConfig config;
  config.trials = 8;
  config.engine.max_slots = 100000;
  const SyncTrialStats a =
      run_sync_trials(network, core::make_algorithm1(8), config);
  const SyncTrialStats b =
      run_sync_trials(network, core::make_algorithm1(8), config);
  // Same root seed -> identical trial outcomes.
  ASSERT_EQ(a.completion_slots.count(), b.completion_slots.count());
  for (std::size_t i = 0; i < a.completion_slots.count(); ++i) {
    EXPECT_EQ(a.completion_slots.values()[i], b.completion_slots.values()[i]);
  }
  // Different trials inside a run should not all take identical time.
  const auto summary = a.completion_slots.summarize();
  EXPECT_GT(summary.max, summary.min);
}

TEST(SyncTrials, PerTrialHookCanChangeStartSlots) {
  const net::Network network = small_net();
  SyncTrialConfig config;
  config.trials = 4;
  config.engine.max_slots = 100000;
  std::size_t hook_calls = 0;
  config.per_trial = [&hook_calls, &network](std::size_t,
                                             sim::SlotEngineConfig& engine) {
    ++hook_calls;
    engine.starts.assign(network.node_count(), 0);
    engine.starts[0] = 50;
  };
  const SyncTrialStats stats =
      run_sync_trials(network, core::make_algorithm3(8), config);
  EXPECT_EQ(hook_calls, 4u);
  EXPECT_EQ(stats.completed, 4u);
  // Node 0 is silent for 50 slots, so completion can't be earlier.
  EXPECT_GE(stats.completion_slots.summarize().min, 50.0);
}

TEST(AsyncTrials, CompleteAndMeasureFrames) {
  const net::Network network = small_net();
  AsyncTrialConfig config;
  config.trials = 5;
  config.engine.frame_length = 3.0;
  config.engine.max_real_time = 1e6;
  const AsyncTrialStats stats =
      run_async_trials(network, core::make_algorithm4(8), config);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.max_full_frames.count(), 5u);
  EXPECT_GT(stats.max_full_frames.summarize().mean, 0.0);
  EXPECT_GT(stats.completion_after_ts.summarize().mean, 0.0);
}

TEST(AsyncTrials, FailuresAreCounted) {
  const net::Network network = small_net();
  AsyncTrialConfig config;
  config.trials = 3;
  config.engine.frame_length = 3.0;
  config.engine.max_real_time = 3.0;  // one frame: surely incomplete
  const AsyncTrialStats stats =
      run_async_trials(network, core::make_algorithm4(8), config);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_DOUBLE_EQ(stats.success_rate(), 0.0);
}

}  // namespace
}  // namespace m2hew::runner
