#include "util/table.hpp"

#include <gtest/gtest.h>

namespace m2hew::util {
namespace {

TEST(Table, RendersHeaderRuleAndRows) {
  Table t({"name", "slots"});
  t.row().cell("alg1").cell(128LL);
  t.row().cell("alg3").cell(64LL);
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("slots"), std::string::npos);
  EXPECT_NE(out.find("alg1"), std::string::npos);
  EXPECT_NE(out.find("128"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, DoublePrecisionFormatting) {
  Table t({"x"});
  t.row().cell(3.14159, 3);
  EXPECT_NE(t.render().find("3.142"), std::string::npos);
}

TEST(Table, ColumnsAlignRight) {
  Table t({"v"});
  t.row().cell("1");
  t.row().cell("1000");
  const std::string out = t.render();
  // The short value must be padded to the width of the long one: the row
  // containing "1" alone is rendered as "   1".
  EXPECT_NE(out.find("   1\n"), std::string::npos);
}

TEST(Table, EmptyTableRendersHeaderOnly) {
  Table t({"a", "b"});
  const std::string out = t.render();
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(TableDeath, TooManyCellsAborts) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_DEATH(t.cell("overflow"), "CHECK failed");
}

TEST(TableDeath, CellBeforeRowAborts) {
  Table t({"c"});
  EXPECT_DEATH(t.cell("x"), "CHECK failed");
}

TEST(TableDeath, IncompletePreviousRowAborts) {
  Table t({"a", "b"});
  t.row().cell("x");
  EXPECT_DEATH(t.row(), "CHECK failed");
}

TEST(TableDeath, NoColumnsAborts) {
  EXPECT_DEATH(Table({}), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::util
