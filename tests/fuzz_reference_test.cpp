// Randomized differential tests: core data structures are driven with
// random operation sequences and compared against trivially-correct
// standard-library references.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

#include "net/channel_set.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

class ChannelSetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelSetFuzz, MatchesStdSetUnderRandomOps) {
  util::Rng rng(GetParam());
  const auto universe =
      static_cast<net::ChannelId>(1 + rng.uniform(200));
  net::ChannelSet subject(universe);
  std::set<net::ChannelId> reference;

  for (int op = 0; op < 2000; ++op) {
    const auto c = static_cast<net::ChannelId>(rng.uniform(universe));
    switch (rng.uniform(4)) {
      case 0:
        subject.insert(c);
        reference.insert(c);
        break;
      case 1:
        subject.erase(c);
        reference.erase(c);
        break;
      case 2:
        ASSERT_EQ(subject.contains(c), reference.count(c) == 1);
        break;
      case 3: {
        ASSERT_EQ(subject.size(), reference.size());
        if (!reference.empty()) {
          const auto k =
              static_cast<std::size_t>(rng.uniform(reference.size()));
          auto it = reference.begin();
          std::advance(it, static_cast<long>(k));
          ASSERT_EQ(subject.nth(k), *it);
        }
        break;
      }
    }
  }
  // Final full comparison.
  const auto vec = subject.to_vector();
  ASSERT_EQ(vec.size(), reference.size());
  ASSERT_TRUE(std::equal(vec.begin(), vec.end(), reference.begin()));
}

TEST_P(ChannelSetFuzz, AlgebraMatchesStdSet) {
  util::Rng rng(GetParam() ^ 0x5151);
  const auto universe =
      static_cast<net::ChannelId>(1 + rng.uniform(150));
  net::ChannelSet a(universe);
  net::ChannelSet b(universe);
  std::set<net::ChannelId> ra;
  std::set<net::ChannelId> rb;
  for (int i = 0; i < 120; ++i) {
    const auto ca = static_cast<net::ChannelId>(rng.uniform(universe));
    const auto cb = static_cast<net::ChannelId>(rng.uniform(universe));
    a.insert(ca);
    ra.insert(ca);
    b.insert(cb);
    rb.insert(cb);
  }
  std::vector<net::ChannelId> expected;
  std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::back_inserter(expected));
  ASSERT_EQ(a.intersect(b).to_vector(), expected);
  ASSERT_EQ(a.intersection_size(b), expected.size());

  expected.clear();
  std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                 std::back_inserter(expected));
  ASSERT_EQ(a.unite(b).to_vector(), expected);

  expected.clear();
  std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                      std::back_inserter(expected));
  ASSERT_EQ(a.subtract(b).to_vector(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelSetFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

class TopologyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyFuzz, MatchesAdjacencyMatrix) {
  util::Rng rng(GetParam());
  const auto n = static_cast<net::NodeId>(2 + rng.uniform(30));
  net::Topology subject(n);
  std::vector<std::vector<bool>> matrix(n, std::vector<bool>(n, false));

  for (int op = 0; op < 300; ++op) {
    const auto u = static_cast<net::NodeId>(rng.uniform(n));
    const auto v = static_cast<net::NodeId>(rng.uniform(n));
    if (u == v) continue;
    if (rng.bernoulli(0.5)) {
      if (!matrix[u][v]) {
        subject.add_arc(u, v);
        matrix[u][v] = true;
      }
    } else {
      if (!matrix[u][v] && !matrix[v][u]) {
        subject.add_edge(u, v);
        matrix[u][v] = true;
        matrix[v][u] = true;
      }
    }
  }
  subject.finalize();

  std::size_t arcs = 0;
  bool symmetric = true;
  for (net::NodeId u = 0; u < n; ++u) {
    std::vector<net::NodeId> out;
    std::vector<net::NodeId> in;
    for (net::NodeId v = 0; v < n; ++v) {
      ASSERT_EQ(subject.has_arc(u, v), matrix[u][v]);
      if (matrix[u][v]) {
        ++arcs;
        out.push_back(v);
        if (!matrix[v][u]) symmetric = false;
      }
      if (matrix[v][u]) in.push_back(v);
    }
    ASSERT_EQ(subject.out_degree(u), out.size());
    ASSERT_EQ(subject.in_degree(u), in.size());
    const auto got_out = subject.out_neighbors(u);
    ASSERT_TRUE(std::equal(got_out.begin(), got_out.end(), out.begin(),
                           out.end()));
    const auto got_in = subject.in_neighbors(u);
    ASSERT_TRUE(
        std::equal(got_in.begin(), got_in.end(), in.begin(), in.end()));
  }
  ASSERT_EQ(subject.arc_count(), arcs);
  ASSERT_EQ(subject.is_symmetric(), symmetric);

  // edges() = unordered pairs with at least one arc.
  std::vector<std::pair<net::NodeId, net::NodeId>> expected_edges;
  for (net::NodeId u = 0; u < n; ++u) {
    for (net::NodeId v = u + 1; v < n; ++v) {
      if (matrix[u][v] || matrix[v][u]) expected_edges.emplace_back(u, v);
    }
  }
  ASSERT_EQ(subject.edges(), expected_edges);

  // Connectivity against a reference union-find over the undirected view.
  std::vector<net::NodeId> parent(n);
  for (net::NodeId u = 0; u < n; ++u) parent[u] = u;
  std::function<net::NodeId(net::NodeId)> find =
      [&](net::NodeId x) -> net::NodeId {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (net::NodeId u = 0; u < n; ++u) {
    for (net::NodeId v = 0; v < n; ++v) {
      if (matrix[u][v]) parent[find(u)] = find(v);
    }
  }
  bool connected = true;
  for (net::NodeId u = 1; u < n; ++u) {
    connected &= find(u) == find(0);
  }
  ASSERT_EQ(subject.is_connected(), connected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace m2hew
