#include "net/topology_gen.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "util/rng.hpp"

namespace m2hew::net {
namespace {

TEST(TopologyGen, LineShape) {
  const Topology t = make_line(5);
  EXPECT_EQ(t.node_count(), 5u);
  EXPECT_EQ(t.edge_count(), 4u);
  EXPECT_EQ(t.degree(0), 1u);
  EXPECT_EQ(t.degree(2), 2u);
  EXPECT_EQ(t.degree(4), 1u);
  EXPECT_TRUE(t.is_connected());
}

TEST(TopologyGen, SingleNodeLine) {
  const Topology t = make_line(1);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.edge_count(), 0u);
}

TEST(TopologyGen, RingShape) {
  const Topology t = make_ring(6);
  EXPECT_EQ(t.edge_count(), 6u);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(t.degree(u), 2u);
  EXPECT_TRUE(t.has_edge(5, 0));
  EXPECT_TRUE(t.is_connected());
}

TEST(TopologyGen, GridShape) {
  const Topology t = make_grid(3, 4);
  EXPECT_EQ(t.node_count(), 12u);
  // 3 rows × 3 horizontal edges + 2 vertical rows × 4 = 9 + 8.
  EXPECT_EQ(t.edge_count(), 17u);
  EXPECT_EQ(t.degree(0), 2u);   // corner
  EXPECT_EQ(t.degree(5), 4u);   // interior (row 1, col 1)
  EXPECT_TRUE(t.is_connected());
}

TEST(TopologyGen, StarShape) {
  const Topology t = make_star(7);
  EXPECT_EQ(t.edge_count(), 6u);
  EXPECT_EQ(t.degree(0), 6u);
  for (NodeId u = 1; u < 7; ++u) EXPECT_EQ(t.degree(u), 1u);
}

TEST(TopologyGen, CliqueShape) {
  const Topology t = make_clique(5);
  EXPECT_EQ(t.edge_count(), 10u);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(t.degree(u), 4u);
}

TEST(TopologyGen, ErdosRenyiExtremes) {
  util::Rng rng(1);
  const Topology none = make_erdos_renyi(10, 0.0, rng);
  EXPECT_EQ(none.edge_count(), 0u);
  const Topology all = make_erdos_renyi(10, 1.0, rng);
  EXPECT_EQ(all.edge_count(), 45u);
}

TEST(TopologyGen, ErdosRenyiDensityMatchesP) {
  util::Rng rng(2);
  const Topology t = make_erdos_renyi(60, 0.3, rng);
  const double possible = 60.0 * 59.0 / 2.0;
  EXPECT_NEAR(static_cast<double>(t.edge_count()) / possible, 0.3, 0.05);
}

TEST(TopologyGen, UnitDiskEdgesMatchDistances) {
  util::Rng rng(3);
  const GeometricTopology g = make_unit_disk(30, 1.0, 0.3, rng);
  ASSERT_EQ(g.positions.size(), 30u);
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId v = u + 1; v < 30; ++v) {
      const bool close =
          squared_distance(g.positions[u], g.positions[v]) <= 0.09;
      EXPECT_EQ(g.topology.has_edge(u, v), close);
    }
  }
}

TEST(TopologyGen, ConnectedUnitDiskIsConnected) {
  util::Rng rng(4);
  // Radius chosen comfortably above the connectivity threshold so the
  // retry loop succeeds.
  const GeometricTopology g = make_connected_unit_disk(25, 1.0, 0.45, rng);
  EXPECT_TRUE(g.topology.is_connected());
}

TEST(TopologyGen, SparseErdosRenyiDensityMatchesP) {
  util::Rng rng(11);
  const NodeId n = 400;
  const double p = 0.03;
  const Topology t = make_erdos_renyi_sparse(n, p, rng);
  const double pairs = n * (n - 1) / 2.0;
  const double expected = pairs * p;
  // ~2394 expected edges, sd ≈ 48; a 5-sigma band keeps this stable.
  EXPECT_NEAR(static_cast<double>(t.edge_count()), expected,
              5.0 * std::sqrt(expected));
  for (const auto& [u, v] : t.arcs()) {
    EXPECT_NE(u, v);
    EXPECT_LT(u, n);
    EXPECT_LT(v, n);
  }
  EXPECT_TRUE(t.is_symmetric());
}

TEST(TopologyGen, SparseErdosRenyiExtremes) {
  util::Rng rng(12);
  EXPECT_EQ(make_erdos_renyi_sparse(50, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(make_erdos_renyi_sparse(10, 1.0, rng).edge_count(), 45u);
  EXPECT_EQ(make_erdos_renyi_sparse(0, 0.5, rng).node_count(), 0u);
  EXPECT_EQ(make_erdos_renyi_sparse(1, 0.5, rng).edge_count(), 0u);
}

TEST(TopologyGen, BucketedUnitDiskMatchesDenseScan) {
  // Identical seed → identical node placement; the edge sets must agree
  // exactly, bucketed scan or not.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    util::Rng dense_rng(seed);
    util::Rng bucket_rng(seed);
    const GeometricTopology dense = make_unit_disk(150, 10.0, 1.7, dense_rng);
    const GeometricTopology bucketed =
        make_unit_disk_bucketed(150, 10.0, 1.7, bucket_rng);
    ASSERT_EQ(dense.positions.size(), bucketed.positions.size());
    for (std::size_t i = 0; i < dense.positions.size(); ++i) {
      EXPECT_EQ(dense.positions[i].x, bucketed.positions[i].x);
      EXPECT_EQ(dense.positions[i].y, bucketed.positions[i].y);
    }
    ASSERT_EQ(dense.topology.edge_count(), bucketed.topology.edge_count());
    for (const auto& [u, v] : dense.topology.edges()) {
      EXPECT_TRUE(bucketed.topology.has_edge(u, v));
    }
  }
}

TEST(TopologyGen, BucketedUnitDiskTinyRadius) {
  // Radius far below cell-cap granularity: the cap enlarges cells; edges
  // must still match the dense scan.
  util::Rng a(7);
  util::Rng b(7);
  const GeometricTopology dense = make_unit_disk(60, 50.0, 0.9, a);
  const GeometricTopology bucketed = make_unit_disk_bucketed(60, 50.0, 0.9, b);
  EXPECT_EQ(dense.topology.edge_count(), bucketed.topology.edge_count());
  for (const auto& [u, v] : dense.topology.edges()) {
    EXPECT_TRUE(bucketed.topology.has_edge(u, v));
  }
}

TEST(TopologyGenDeath, GridNodeCountOverflowAborts) {
  // 70000 × 70000 = 4.9e9 exceeds NodeId; 32-bit arithmetic would wrap to
  // ~605M and silently build the wrong graph. Must die on the CHECK
  // instead (and before trying to allocate it).
  EXPECT_DEATH((void)make_grid(70000, 70000), "CHECK failed");
}

TEST(TopologyGenDeath, TinyRingAborts) {
  EXPECT_DEATH((void)make_ring(2), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::net
