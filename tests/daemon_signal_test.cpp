// Signal-driven shutdown contract of the sweep daemon (service/daemon.hpp):
// SIGTERM mid-sweep exits 0 after draining the in-flight job, leaves zero
// orphaned processes and zero stale *.tmp files, parks the interrupted
// spec back in incoming/ with an "interrupted" status — and a restarted
// daemon completes it with an artifact bit-identical (modulo timing
// fields) to an in-process run_sweep of the same spec.
#include "service/daemon.hpp"

#include <dirent.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "service/artifact_cache.hpp"
#include "service/sweep_runner.hpp"
#include "service/sweep_spec.hpp"
#include "util/ini.hpp"

namespace m2hew::service {
namespace {

// Heavy enough (3 points x 5000 faulted trials, ~4 s at 2 workers) that a
// SIGTERM sent shortly after the status flips to "running" reliably lands
// mid-sweep, yet a full completion stays test-suite friendly.
constexpr const char* kSlowSpec = R"(
[experiment]
name = signal_test
algorithm = alg3
delta-est = 8
trials = 5000
seed = 4
max-slots = 200000
sweep-key = set-size
sweep-values = 4 3 2

[scenario]
topology = clique
channels = uniform
n = 12
universe = 8

[faults]
crash-prob = 0.4
crash-from = 50
crash-until = 2000
down-min = 100
down-max = 600
reset-on-recovery = 1
)";

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

[[nodiscard]] std::size_t count_tmp_files(const std::string& dir) {
  std::size_t count = 0;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return 0;
  while (dirent* entry = ::readdir(handle)) {
    const std::string_view name = entry->d_name;
    if (name.size() >= 4 && name.substr(name.size() - 4) == ".tmp") ++count;
  }
  ::closedir(handle);
  return count;
}

/// Strips wall-clock-dependent content so two runs of the same spec
/// compare equal: per-run "elapsed_seconds"/"threads" suffixes and the
/// throughput line. Everything else in the artifact is deterministic.
[[nodiscard]] std::string strip_volatile(const std::string& json) {
  std::istringstream in(json);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"busy_seconds\"") != std::string::npos) continue;
    const std::size_t at = line.find("\"elapsed_seconds\"");
    if (at != std::string::npos) line.resize(at);
    out << line << '\n';
  }
  return out.str();
}

TEST(DaemonSignals, SigtermMidSweepDrainsCleanlyAndResumesOnRestart) {
  char tmpl[] = "/tmp/m2hew_signal_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string spool = std::string(tmpl) + "/spool";
  ASSERT_EQ(::mkdir(spool.c_str(), 0755), 0);
  ASSERT_EQ(::mkdir((spool + "/incoming").c_str(), 0755), 0);
  {
    std::ofstream out(spool + "/incoming/slow.ini");
    out << kSlowSpec;
  }

  DaemonConfig config;
  config.spool_dir = spool;
  config.workers = 2;
  config.poll_ms = 20;
  config.once = false;  // watch mode: only the signal can end it

  // The daemon runs in its own process group so the no-orphans check can
  // probe every process it ever forked with one kill(-pgid, 0).
  const pid_t daemon_pid = ::fork();
  ASSERT_GE(daemon_pid, 0);
  if (daemon_pid == 0) {
    ::setpgid(0, 0);
    ::_exit(run_daemon(config));
  }
  ::setpgid(daemon_pid, daemon_pid);  // parent side of the pgid race

  // Wait (<= 15 s) for the job to actually be running.
  const std::string status_path = spool + "/status/slow.json";
  bool running = false;
  for (int i = 0; i < 1500 && !running; ++i) {
    running = read_file(status_path).find("\"state\": \"running\"") !=
              std::string::npos;
    if (!running) ::usleep(10 * 1000);
  }
  ASSERT_TRUE(running) << "daemon never started the job";
  ::usleep(300 * 1000);  // let the sweep get firmly mid-flight

  ASSERT_EQ(::kill(daemon_pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon_pid, &status, 0), daemon_pid);
  ASSERT_TRUE(WIFEXITED(status)) << "daemon killed instead of exiting";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // No orphans: the daemon's whole process group is gone (job child and
  // shard workers included).
  errno = 0;
  EXPECT_EQ(::kill(-daemon_pid, 0), -1);
  EXPECT_EQ(errno, ESRCH);

  // Clean spool: no half-written temps anywhere, the interrupted spec
  // still queued, and the status honest about what happened.
  EXPECT_EQ(count_tmp_files(spool + "/status"), 0u);
  EXPECT_EQ(count_tmp_files(spool + "/cache"), 0u);
  struct stat st {};
  EXPECT_EQ(::stat((spool + "/incoming/slow.ini").c_str(), &st), 0)
      << "interrupted spec must stay in incoming/ for the restart";
  const std::string interrupted = read_file(status_path);
  EXPECT_NE(interrupted.find("\"state\": \"interrupted\""),
            std::string::npos)
      << interrupted;

  // Restart (--once): the job completes from scratch.
  DaemonConfig once = config;
  once.once = true;
  ASSERT_EQ(run_daemon(once), 0);
  const std::string done = read_file(status_path);
  EXPECT_NE(done.find("\"state\": \"done\""), std::string::npos) << done;
  EXPECT_NE(done.find("\"cache\": \"miss\""), std::string::npos) << done;

  // The artifact equals an in-process run of the same spec, modulo the
  // timing fields — interruption must not have poisoned any state the
  // rerun could observe.
  const util::IniFile ini = util::IniFile::parse_string(kSlowSpec);
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(parse_sweep_spec(ini, spec, &error)) << error;
  SweepResult oracle;
  ASSERT_TRUE(run_sweep(spec, config.workers, oracle, &error)) << error;

  const std::string artifact =
      read_file(spool + "/cache/" + scenario_hash_hex(spec) + ".json");
  ASSERT_FALSE(artifact.empty());
  EXPECT_EQ(strip_volatile(artifact),
            strip_volatile(sweep_artifact_json(spec, oracle)));
}

}  // namespace
}  // namespace m2hew::service
