#include "sim/discovery_state.hpp"

#include <gtest/gtest.h>

#include "net/topology_gen.hpp"

namespace m2hew::sim {
namespace {

[[nodiscard]] net::Network make_path_network() {
  // 0 -- 1 -- 2, all on channels {0,1}.
  return net::Network(net::make_line(3),
                      std::vector<net::ChannelSet>(
                          3, net::ChannelSet(2, {0, 1})));
}

TEST(DiscoveryState, StartsEmpty) {
  const net::Network network = make_path_network();
  const DiscoveryState state(network);
  EXPECT_EQ(state.total_links(), 4u);  // 2 edges × 2 directions
  EXPECT_EQ(state.covered_links(), 0u);
  EXPECT_FALSE(state.complete());
  EXPECT_FALSE(state.is_covered({0, 1}));
}

TEST(DiscoveryState, RecordCoversDirectionally) {
  const net::Network network = make_path_network();
  DiscoveryState state(network);
  EXPECT_TRUE(state.record_reception(0, 1, 5.0));
  EXPECT_TRUE(state.is_covered({0, 1}));
  EXPECT_FALSE(state.is_covered({1, 0}));  // the reverse link is separate
  EXPECT_EQ(state.covered_links(), 1u);
  EXPECT_DOUBLE_EQ(state.first_coverage_time({0, 1}), 5.0);
}

TEST(DiscoveryState, RepeatReceptionKeepsFirstTime) {
  const net::Network network = make_path_network();
  DiscoveryState state(network);
  EXPECT_TRUE(state.record_reception(0, 1, 5.0));
  EXPECT_FALSE(state.record_reception(0, 1, 9.0));
  EXPECT_DOUBLE_EQ(state.first_coverage_time({0, 1}), 5.0);
  EXPECT_EQ(state.covered_links(), 1u);
  EXPECT_EQ(state.reception_count(), 2u);
}

TEST(DiscoveryState, CompleteAfterAllLinks) {
  const net::Network network = make_path_network();
  DiscoveryState state(network);
  state.record_reception(0, 1, 1.0);
  state.record_reception(1, 0, 2.0);
  state.record_reception(1, 2, 3.0);
  EXPECT_FALSE(state.complete());
  state.record_reception(2, 1, 4.0);
  EXPECT_TRUE(state.complete());
}

TEST(DiscoveryState, NeighborTablesHoldSpans) {
  const net::Network network = make_path_network();
  DiscoveryState state(network);
  state.record_reception(0, 1, 1.0);
  const auto& table = state.neighbor_table(1);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].neighbor, 0u);
  EXPECT_EQ(table[0].common_channels, network.span(0, 1));
}

TEST(DiscoveryState, GroundTruthComparison) {
  const net::Network network = make_path_network();
  DiscoveryState state(network);
  EXPECT_FALSE(state.table_matches_ground_truth(1));
  state.record_reception(0, 1, 1.0);
  EXPECT_FALSE(state.table_matches_ground_truth(1));  // 2 still missing
  state.record_reception(2, 1, 2.0);
  EXPECT_TRUE(state.table_matches_ground_truth(1));
  // Node 0's table only needs node 1.
  state.record_reception(1, 0, 3.0);
  EXPECT_TRUE(state.table_matches_ground_truth(0));
}

TEST(DiscoveryStateDeath, NonLinkReceptionAborts) {
  const net::Network network = make_path_network();
  DiscoveryState state(network);
  EXPECT_DEATH(state.record_reception(0, 2, 1.0), "CHECK failed");
}

TEST(DiscoveryStateDeath, FirstTimeOfUncoveredAborts) {
  const net::Network network = make_path_network();
  const DiscoveryState state(network);
  EXPECT_DEATH((void)state.first_coverage_time({0, 1}), "CHECK failed");
}

TEST(DiscoveryState, EmptySpanPairIsNotALink) {
  net::Topology t(2);
  t.add_edge(0, 1);
  const net::Network network(
      std::move(t),
      {net::ChannelSet(2, {0}), net::ChannelSet(2, {1})});
  DiscoveryState state(network);
  EXPECT_EQ(state.total_links(), 0u);
  EXPECT_TRUE(state.complete());  // vacuously
}

}  // namespace
}  // namespace m2hew::sim
