// End-to-end discovery runs: every algorithm, on several network shapes,
// must build complete and correct neighbor tables.
#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "runner/scenario.hpp"
#include "sim/async_engine.hpp"
#include "sim/slot_engine.hpp"

namespace m2hew {
namespace {

using runner::ChannelKind;
using runner::ScenarioConfig;
using runner::TopologyKind;

void expect_all_tables_correct(const net::Network& network,
                               const sim::DiscoveryState& state) {
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    EXPECT_TRUE(state.table_matches_ground_truth(u)) << "node " << u;
  }
}

[[nodiscard]] ScenarioConfig heterogeneous_unit_disk() {
  ScenarioConfig config;
  config.topology = TopologyKind::kUnitDisk;
  config.n = 12;
  config.ud_radius = 0.45;
  config.channels = ChannelKind::kUniformRandom;
  config.universe = 10;
  config.set_size = 4;
  return config;
}

TEST(Integration, Algorithm1DiscoversHomogeneousClique) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 8;
  config.universe = 6;
  config.set_size = 6;
  const net::Network network = runner::build_scenario(config, 21);
  sim::SlotEngineConfig engine;
  engine.max_slots = 200000;
  engine.seed = 99;
  const auto result =
      sim::run_slot_engine(network, core::make_algorithm1(8), engine);
  ASSERT_TRUE(result.complete);
  expect_all_tables_correct(network, result.state);
}

TEST(Integration, Algorithm1DiscoversHeterogeneousUnitDisk) {
  const net::Network network =
      runner::build_scenario(heterogeneous_unit_disk(), 22);
  sim::SlotEngineConfig engine;
  engine.max_slots = 500000;
  engine.seed = 100;
  const auto result =
      sim::run_slot_engine(network, core::make_algorithm1(8), engine);
  ASSERT_TRUE(result.complete);
  expect_all_tables_correct(network, result.state);
}

TEST(Integration, Algorithm2NeedsNoDegreeKnowledge) {
  const net::Network network =
      runner::build_scenario(heterogeneous_unit_disk(), 23);
  sim::SlotEngineConfig engine;
  engine.max_slots = 500000;
  engine.seed = 101;
  const auto result =
      sim::run_slot_engine(network, core::make_algorithm2(), engine);
  ASSERT_TRUE(result.complete);
  expect_all_tables_correct(network, result.state);
}

TEST(Integration, Algorithm3HandlesStaggeredStarts) {
  const net::Network network =
      runner::build_scenario(heterogeneous_unit_disk(), 24);
  sim::SlotEngineConfig engine;
  engine.max_slots = 500000;
  engine.seed = 102;
  engine.starts.assign(network.node_count(), 0);
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    engine.starts[u] = 37ull * u;  // heavily staggered
  }
  const auto result =
      sim::run_slot_engine(network, core::make_algorithm3(8), engine);
  ASSERT_TRUE(result.complete);
  expect_all_tables_correct(network, result.state);
}

TEST(Integration, Algorithm3OnChainOverlapHeterogeneity) {
  ScenarioConfig config;
  config.topology = TopologyKind::kLine;
  config.n = 10;
  config.channels = ChannelKind::kChainOverlap;
  config.set_size = 4;
  config.chain_overlap = 1;  // ρ = 1/4
  const net::Network network = runner::build_scenario(config, 25);
  ASSERT_DOUBLE_EQ(network.min_span_ratio(), 0.25);
  sim::SlotEngineConfig engine;
  engine.max_slots = 500000;
  engine.seed = 103;
  const auto result =
      sim::run_slot_engine(network, core::make_algorithm3(4), engine);
  ASSERT_TRUE(result.complete);
  expect_all_tables_correct(network, result.state);
}

TEST(Integration, Algorithm4WithDriftingClocksAndOffsets) {
  const net::Network network =
      runner::build_scenario(heterogeneous_unit_disk(), 26);
  sim::AsyncEngineConfig engine;
  engine.frame_length = 3.0;
  engine.max_real_time = 3e6;
  engine.seed = 104;
  engine.starts.assign(network.node_count(), 0.0);
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    engine.starts[u] = 1.7 * u;
  }
  engine.clock_builder = [](net::NodeId, std::uint64_t seed) {
    return std::make_unique<sim::PiecewiseDriftClock>(
        sim::PiecewiseDriftClock::Config{.max_drift = 1.0 / 7.0,
                                         .min_segment = 20.0,
                                         .max_segment = 100.0},
        seed);
  };
  const auto result =
      sim::run_async_engine(network, core::make_algorithm4(8), engine);
  ASSERT_TRUE(result.complete);
  expect_all_tables_correct(network, result.state);
  // Theorem 9 unit is well-defined at completion.
  ASSERT_EQ(result.full_frames_since_ts.size(), network.node_count());
}

TEST(Integration, Algorithm4OnPrimaryUserSpectrum) {
  ScenarioConfig config;
  config.topology = TopologyKind::kUnitDisk;
  config.n = 10;
  config.ud_radius = 0.5;
  config.channels = ChannelKind::kPrimaryUsers;
  config.universe = 8;
  config.pu_count = 5;
  config.pu_min_radius = 0.15;
  config.pu_max_radius = 0.35;
  const net::Network network = runner::build_scenario(config, 27);
  sim::AsyncEngineConfig engine;
  engine.frame_length = 3.0;
  engine.max_real_time = 3e6;
  engine.seed = 105;
  const auto result =
      sim::run_async_engine(network, core::make_algorithm4(6), engine);
  ASSERT_TRUE(result.complete);
  expect_all_tables_correct(network, result.state);
}

TEST(Integration, UniversalBaselineEventuallyDiscovers) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 6;
  config.channels = ChannelKind::kUniformRandom;
  config.universe = 8;
  config.set_size = 3;
  const net::Network network = runner::build_scenario(config, 28);
  sim::SlotEngineConfig engine;
  engine.max_slots = 500000;
  engine.seed = 106;
  const auto result = sim::run_slot_engine(
      network, core::make_universal_baseline(8, 0.5), engine);
  ASSERT_TRUE(result.complete);
  expect_all_tables_correct(network, result.state);
}

TEST(Integration, UnreliableChannelsOnlySlowDiscovery) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 6;
  config.universe = 4;
  config.set_size = 4;
  const net::Network network = runner::build_scenario(config, 29);

  sim::SlotEngineConfig reliable;
  reliable.max_slots = 500000;
  reliable.seed = 107;
  const auto r0 =
      sim::run_slot_engine(network, core::make_algorithm3(8), reliable);

  sim::SlotEngineConfig lossy = reliable;
  lossy.loss_probability = 0.4;
  const auto r1 =
      sim::run_slot_engine(network, core::make_algorithm3(8), lossy);

  ASSERT_TRUE(r0.complete);
  ASSERT_TRUE(r1.complete);
  expect_all_tables_correct(network, r1.state);
}

}  // namespace
}  // namespace m2hew
