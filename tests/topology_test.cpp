#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace m2hew::net {
namespace {

TEST(Topology, EmptyGraph) {
  const Topology t(0);
  EXPECT_EQ(t.node_count(), 0u);
  EXPECT_EQ(t.edge_count(), 0u);
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, AddEdgeIsSymmetric) {
  Topology t(3);
  t.add_edge(0, 1);
  t.finalize();
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(1, 0));
  EXPECT_FALSE(t.has_edge(0, 2));
  EXPECT_EQ(t.edge_count(), 1u);
}

TEST(Topology, NeighborsAreSortedAfterFinalize) {
  Topology t(5);
  t.add_edge(2, 4);
  t.add_edge(2, 0);
  t.add_edge(2, 3);
  t.finalize();
  const auto nbrs = t.neighbors(2);
  const std::vector<NodeId> expected{0, 3, 4};
  EXPECT_TRUE(std::equal(nbrs.begin(), nbrs.end(), expected.begin(),
                         expected.end()));
}

TEST(Topology, DegreeAndMaxDegree) {
  Topology t(4);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  t.add_edge(0, 3);
  t.finalize();
  EXPECT_EQ(t.degree(0), 3u);
  EXPECT_EQ(t.degree(1), 1u);
  EXPECT_EQ(t.max_degree(), 3u);
}

TEST(Topology, EdgesAreNormalizedPairs) {
  Topology t(3);
  t.add_edge(2, 1);
  t.finalize();
  ASSERT_EQ(t.edges().size(), 1u);
  EXPECT_EQ(t.edges()[0], std::make_pair(NodeId{1}, NodeId{2}));
}

TEST(Topology, ConnectivityDetection) {
  Topology connected(3);
  connected.add_edge(0, 1);
  connected.add_edge(1, 2);
  connected.finalize();
  EXPECT_TRUE(connected.is_connected());

  Topology split(4);
  split.add_edge(0, 1);
  split.add_edge(2, 3);
  split.finalize();
  EXPECT_FALSE(split.is_connected());

  const Topology singleton(1);
  EXPECT_TRUE(singleton.is_connected());

  const Topology isolated(2);
  EXPECT_FALSE(isolated.is_connected());
}

TEST(TopologyDeath, SelfLoopAborts) {
  Topology t(2);
  EXPECT_DEATH(t.add_edge(1, 1), "CHECK failed");
}

TEST(TopologyDeath, DuplicateEdgeAborts) {
  Topology t(2);
  t.add_edge(0, 1);
  EXPECT_DEATH(t.add_edge(1, 0), "CHECK failed");
}

TEST(TopologyDeath, OutOfRangeNodeAborts) {
  Topology t(2);
  EXPECT_DEATH(t.add_edge(0, 2), "CHECK failed");
}

TEST(TopologyDeath, NeighborsBeforeFinalizeAborts) {
  Topology t(3);
  t.add_edge(0, 1);
  EXPECT_DEATH((void)t.neighbors(0), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::net
