#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace m2hew::util {
namespace {

TEST(AsciiPlot, ContainsMarkersAndAxes) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{0.0, 1.0, 4.0, 9.0};
  const std::string plot = ascii_plot(x, y);
  EXPECT_GE(std::count(plot.begin(), plot.end(), '*'), 3);
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find('|'), std::string::npos);
  EXPECT_NE(plot.find('9'), std::string::npos);  // y max label
}

TEST(AsciiPlot, LabelsAppear) {
  PlotOptions options;
  options.x_label = "rho";
  options.y_label = "slots";
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{3.0, 4.0};
  const std::string plot = ascii_plot(x, y, options);
  EXPECT_NE(plot.find("rho"), std::string::npos);
  EXPECT_NE(plot.find("slots"), std::string::npos);
}

TEST(AsciiPlot, CornersLandAtExtremes) {
  PlotOptions options;
  options.width = 20;
  options.height = 5;
  const std::vector<double> x{0.0, 10.0};
  const std::vector<double> y{0.0, 10.0};
  const std::string plot = ascii_plot(x, y, options);
  // Split into lines: first plot row holds the max-y point at the right
  // edge; last plot row holds the min point at the left edge.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < plot.size()) {
    const std::size_t nl = plot.find('\n', pos);
    lines.push_back(plot.substr(pos, nl - pos));
    pos = nl + 1;
  }
  EXPECT_EQ(lines[0].back(), '*');
  EXPECT_EQ(lines[4][12], '*');  // column after "%10s |" prefix
}

TEST(AsciiPlot, SinglePointDoesNotDivideByZero) {
  const std::vector<double> x{5.0};
  const std::vector<double> y{7.0};
  const std::string plot = ascii_plot(x, y);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiPlot, LogScaleCompressesDecades) {
  PlotOptions options;
  options.log_y = true;
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{10.0, 100.0, 1000.0};
  const std::string plot = ascii_plot(x, y, options);
  EXPECT_NE(plot.find("1e+03"), std::string::npos);
  EXPECT_NE(plot.find("10"), std::string::npos);
}

TEST(AsciiPlot, PairOverloadMatches) {
  const std::vector<std::pair<double, double>> pts{{0.0, 1.0}, {1.0, 2.0}};
  const std::vector<double> x{0.0, 1.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_EQ(ascii_plot(pts), ascii_plot(x, y));
}

TEST(AsciiPlotDeath, InvalidInputsAbort) {
  const std::vector<double> x{1.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_DEATH((void)ascii_plot(x, y), "CHECK failed");
  const std::vector<double> empty;
  EXPECT_DEATH((void)ascii_plot(empty, empty), "CHECK failed");
  PlotOptions log_opts;
  log_opts.log_y = true;
  const std::vector<double> neg{-1.0};
  EXPECT_DEATH((void)ascii_plot(neg, neg, log_opts), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::util
