// Cross-validation of the event-driven asynchronous engine against an
// independent brute-force reference: both replay identical clocks and
// scripted frame actions; the reference recomputes every reception with a
// direct O(n²·frames²) interval scan of the paper's coverage definition.
// Any divergence in covered links or first-coverage times is an engine bug.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <memory>
#include <vector>

#include "net/channel_assign.hpp"
#include "net/topology_gen.hpp"
#include "sim/async_engine.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

constexpr double kL = 3.0;
constexpr unsigned kSlots = 3;
constexpr std::size_t kFrames = 60;

struct RefFrame {
  double start = 0.0;
  double end = 0.0;
  sim::Mode mode = sim::Mode::kQuiet;
  net::ChannelId channel = net::kInvalidChannel;
  std::array<double, kSlots + 1> bounds{};
};

class ScriptPolicy final : public sim::AsyncPolicy {
 public:
  explicit ScriptPolicy(std::vector<sim::FrameAction> script)
      : script_(std::move(script)) {}
  sim::FrameAction next_frame(util::Rng&) override {
    const sim::FrameAction a =
        index_ < script_.size() ? script_[index_] : sim::FrameAction{};
    ++index_;
    return a;
  }

 private:
  std::vector<sim::FrameAction> script_;
  std::size_t index_ = 0;
};

struct Instance {
  net::Network network;
  std::vector<std::vector<sim::FrameAction>> scripts;
  std::vector<double> start_times;
  double max_drift = 0.0;
  std::uint64_t seed = 0;
};

[[nodiscard]] sim::PiecewiseDriftClock::Config clock_config(double drift) {
  return {.max_drift = drift, .min_segment = 5.0, .max_segment = 25.0};
}

[[nodiscard]] std::uint64_t clock_seed(std::uint64_t base, net::NodeId u) {
  return base * 1000 + u;
}

[[nodiscard]] Instance make_instance(std::uint64_t seed, double drift,
                                     bool asymmetric) {
  util::Rng rng(seed);
  net::Topology topology = net::make_clique(6);
  if (asymmetric) {
    topology = net::make_asymmetric(topology, 0.5, rng);
  }
  auto assignment = net::generate_with_nonempty_spans(
      topology, 100,
      [&] { return net::uniform_random_assignment(6, 6, 3, rng); });
  Instance inst{net::Network(std::move(topology), std::move(assignment)),
                {},
                {},
                drift,
                seed};
  for (net::NodeId u = 0; u < inst.network.node_count(); ++u) {
    std::vector<sim::FrameAction> script;
    script.reserve(kFrames);
    const auto channels = inst.network.available(u).to_vector();
    for (std::size_t k = 0; k < kFrames; ++k) {
      sim::FrameAction action;
      const double dice = rng.uniform_double();
      action.mode = dice < 0.40   ? sim::Mode::kTransmit
                    : dice < 0.90 ? sim::Mode::kReceive
                                  : sim::Mode::kQuiet;
      if (action.mode != sim::Mode::kQuiet) {
        action.channel = rng.pick(std::span<const net::ChannelId>(channels));
      }
      script.push_back(action);
    }
    inst.scripts.push_back(std::move(script));
    inst.start_times.push_back(rng.uniform_double(0.0, 2.0 * kL));
  }
  return inst;
}

// Reference reception computation.
struct RefResult {
  // (from, to) -> first coverage time.
  std::map<std::pair<net::NodeId, net::NodeId>, double> first_coverage;
};

[[nodiscard]] RefResult reference_run(const Instance& inst) {
  const net::NodeId n = inst.network.node_count();
  std::vector<std::vector<RefFrame>> frames(n);
  for (net::NodeId u = 0; u < n; ++u) {
    sim::PiecewiseDriftClock clock(clock_config(inst.max_drift),
                                   clock_seed(inst.seed, u));
    const double local0 = clock.local_at_real(inst.start_times[u]);
    for (std::size_t k = 0; k < kFrames; ++k) {
      RefFrame f;
      for (unsigned j = 0; j <= kSlots; ++j) {
        f.bounds[j] = clock.real_at_local(
            local0 + kL * static_cast<double>(k) +
            kL / kSlots * static_cast<double>(j));
      }
      f.start = f.bounds[0];
      f.end = f.bounds[kSlots];
      f.mode = inst.scripts[u][k].mode;
      f.channel = inst.scripts[u][k].channel;
      frames[u].push_back(f);
    }
  }

  RefResult result;
  for (net::NodeId u = 0; u < n; ++u) {
    for (const RefFrame& g : frames[u]) {
      if (g.mode != sim::Mode::kReceive) continue;
      const net::ChannelId c = g.channel;
      for (const net::Network::InLink& in : inst.network.in_links(u)) {
        if (!in.span->contains(c)) continue;
        const net::NodeId v = in.from;
        for (const RefFrame& f : frames[v]) {
          if (f.mode != sim::Mode::kTransmit || f.channel != c) continue;
          if (f.start >= g.end || f.end <= g.start) continue;
          for (unsigned j = 0; j < kSlots; ++j) {
            const double s0 = f.bounds[j];
            const double s1 = f.bounds[j + 1];
            if (s0 < g.start || s1 > g.end) continue;
            bool interfered = false;
            for (const net::Network::InLink& other :
                 inst.network.in_links(u)) {
              if (other.from == v || !other.span->contains(c)) continue;
              for (const RefFrame& h : frames[other.from]) {
                if (h.mode != sim::Mode::kTransmit || h.channel != c) {
                  continue;
                }
                if (h.start < s1 && h.end > s0) {
                  interfered = true;
                  break;
                }
              }
              if (interfered) break;
            }
            if (interfered) continue;
            const auto key = std::make_pair(v, u);
            const auto it = result.first_coverage.find(key);
            if (it == result.first_coverage.end() || s1 < it->second) {
              result.first_coverage[key] = s1;
            }
            break;  // earliest clear slot of this f; later f can't improve
          }
        }
      }
    }
  }
  return result;
}

class AsyncReference
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double, bool>> {
};

TEST_P(AsyncReference, EngineMatchesBruteForce) {
  const auto [seed, drift, asymmetric] = GetParam();
  const Instance inst = make_instance(seed, drift, asymmetric);

  sim::AsyncEngineConfig config;
  config.frame_length = kL;
  config.slots_per_frame = kSlots;
  config.starts = inst.start_times;
  config.max_frames_per_node = kFrames;
  config.max_real_time = 1e9;
  config.stop_when_complete = false;
  config.seed = 777;  // engine node RNGs are unused by scripted policies
  config.clock_builder = [&inst](net::NodeId u, std::uint64_t) {
    return std::make_unique<sim::PiecewiseDriftClock>(
        clock_config(inst.max_drift), clock_seed(inst.seed, u));
  };
  const auto scripts = inst.scripts;
  const sim::AsyncPolicyFactory factory =
      [&scripts](const net::Network&, net::NodeId u)
      -> std::unique_ptr<sim::AsyncPolicy> {
    return std::make_unique<ScriptPolicy>(scripts[u]);
  };
  const auto engine = sim::run_async_engine(inst.network, factory, config);

  const RefResult reference = reference_run(inst);

  std::size_t checked = 0;
  for (const net::Link link : inst.network.links()) {
    const auto key = std::make_pair(link.from, link.to);
    const auto it = reference.first_coverage.find(key);
    const bool ref_covered = it != reference.first_coverage.end();
    EXPECT_EQ(engine.state.is_covered(link), ref_covered)
        << "link " << link.from << "->" << link.to;
    if (ref_covered && engine.state.is_covered(link)) {
      EXPECT_NEAR(engine.state.first_coverage_time(link), it->second, 1e-9)
          << "link " << link.from << "->" << link.to;
      ++checked;
    }
  }
  // The random scripts must produce a non-trivial number of receptions or
  // the test validates nothing.
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsyncReference,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(0.0, 1.0 / 7.0),
                       ::testing::Values(false, true)));

}  // namespace
}  // namespace m2hew
