#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace m2hew::util {
namespace {

[[nodiscard]] Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags flags = parse({"--n=16", "--epsilon=0.1", "--name=alg3"});
  EXPECT_EQ(flags.get_int("n"), 16);
  EXPECT_DOUBLE_EQ(flags.get_double("epsilon"), 0.1);
  EXPECT_EQ(flags.get_string("name"), "alg3");
}

TEST(Flags, SpaceForm) {
  const Flags flags = parse({"--n", "32", "--name", "alg1"});
  EXPECT_EQ(flags.get_int("n"), 32);
  EXPECT_EQ(flags.get_string("name"), "alg1");
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags flags = parse({});
  EXPECT_EQ(flags.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 2.5), 2.5);
  EXPECT_EQ(flags.get_string("s", "dft"), "dft");
  EXPECT_FALSE(flags.get_bool("b"));
  EXPECT_TRUE(flags.get_bool("b", true));
  EXPECT_FALSE(flags.has("n"));
}

TEST(Flags, BooleanForms) {
  const Flags flags = parse({"--verbose", "--fast=false", "--slow=1"});
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_FALSE(flags.get_bool("fast", true));
  EXPECT_TRUE(flags.get_bool("slow"));
}

TEST(Flags, BarePresenceDoesNotEatFollowingFlag) {
  const Flags flags = parse({"--verbose", "--n=3"});
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_int("n"), 3);
}

TEST(Flags, PositionalArguments) {
  const Flags flags = parse({"first", "--n=1", "second"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "first");
  EXPECT_EQ(flags.positional()[1], "second");
}

TEST(Flags, NegativeNumbersAndDoubles) {
  const Flags flags = parse({"--offset=-42", "--rate=-0.5"});
  EXPECT_EQ(flags.get_int("offset"), -42);
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), -0.5);
}

TEST(Flags, UnconsumedDetectsTypos) {
  const Flags flags = parse({"--n=1", "--typo=zzz"});
  EXPECT_EQ(flags.get_int("n"), 1);
  const auto leftover = flags.unconsumed();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "typo");
}

TEST(Flags, AllConsumedIsEmpty) {
  const Flags flags = parse({"--a=1", "--b=2"});
  (void)flags.get_int("a");
  (void)flags.get_int("b");
  EXPECT_TRUE(flags.unconsumed().empty());
}

TEST(FlagsDeath, BadIntAborts) {
  const Flags flags = parse({"--n=abc"});
  EXPECT_DEATH((void)flags.get_int("n"), "CHECK failed");
}

TEST(FlagsDeath, BadDoubleAborts) {
  const Flags flags = parse({"--x=1.2.3"});
  EXPECT_DEATH((void)flags.get_double("x"), "CHECK failed");
}

TEST(FlagsDeath, BadBoolAborts) {
  const Flags flags = parse({"--b=maybe"});
  EXPECT_DEATH((void)flags.get_bool("b"), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::util
