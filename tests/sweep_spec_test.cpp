// Sweep-spec parsing, canonicalization and cache keying
// (service/sweep_spec.hpp, service/artifact_cache.hpp).
#include "service/sweep_spec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "service/artifact_cache.hpp"
#include "util/ini.hpp"

namespace m2hew::service {
namespace {

constexpr const char* kBaseSpec = R"(
[experiment]
name = spec_test
algorithm = alg3
delta-est = 4
trials = 5
seed = 9
max-slots = 200000
sweep-key = overlap
sweep-values = 4 2

[scenario]
topology = line
channels = chain
n = 8
set-size = 4
)";

[[nodiscard]] SweepSpec parse_or_die(const std::string& text) {
  const util::IniFile ini = util::IniFile::parse_string(text);
  SweepSpec spec;
  std::string error;
  EXPECT_TRUE(parse_sweep_spec(ini, spec, &error)) << error;
  return spec;
}

[[nodiscard]] std::string parse_error_of(const std::string& text) {
  const util::IniFile ini = util::IniFile::parse_string(text);
  SweepSpec spec;
  std::string error;
  EXPECT_FALSE(parse_sweep_spec(ini, spec, &error));
  return error;
}

TEST(SweepSpec, ParsesEveryField) {
  const SweepSpec spec = parse_or_die(kBaseSpec);
  EXPECT_EQ(spec.name, "spec_test");
  EXPECT_EQ(spec.algorithm, "alg3");
  EXPECT_EQ(spec.delta_est, 4u);
  EXPECT_EQ(spec.trials, 5u);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.max_slots, 200000u);
  EXPECT_EQ(spec.kernel, runner::SyncKernel::kEngine);
  EXPECT_EQ(spec.sweep_key, "overlap");
  ASSERT_EQ(spec.sweep_values.size(), 2u);
  EXPECT_EQ(spec.scenario.n, 8u);
  EXPECT_EQ(spec.scenario.channels, runner::ChannelKind::kChainOverlap);
}

TEST(SweepSpec, RejectsBadInput) {
  EXPECT_NE(parse_error_of("[experiment]\nalgorithm = alg9\n"), "");
  EXPECT_NE(parse_error_of("[experiment]\ntrials = 0\n"), "");
  EXPECT_NE(parse_error_of("[experiment]\ntrials = many\n"), "");
  EXPECT_NE(parse_error_of("[experiment]\nkernel = gpu\n"), "");
  EXPECT_NE(parse_error_of("[experiment]\nkernel = soa\n"
                           "algorithm = adaptive\n"),
            "");
  EXPECT_NE(parse_error_of("[experiment]\nbanana = 1\n"), "");
  EXPECT_NE(parse_error_of("[scenario]\nbanana = 1\n"), "");
  EXPECT_NE(parse_error_of("[scenario]\nn = minus-two\n"), "");
  EXPECT_NE(parse_error_of("[scenario]\ntopology = moebius\n"), "");
  EXPECT_NE(parse_error_of("[faults]\nbanana = 1\n"), "");
  EXPECT_NE(parse_error_of("[experimnet]\nname = typo\n"), "");
  EXPECT_NE(parse_error_of("name = outside-any-section\n"), "");
  // Sweep points are validated at parse time, not mid-run.
  EXPECT_NE(parse_error_of("[experiment]\nsweep-key = banana\n"
                           "sweep-values = 1 2\n"),
            "");
}

TEST(SweepSpec, CanonicalizationIgnoresFormattingOnly) {
  const SweepSpec base = parse_or_die(kBaseSpec);

  // Reordered keys and sections, comments, blank lines, crazy whitespace.
  const SweepSpec shuffled = parse_or_die(R"(
; a comment
[scenario]
set-size  =   4
n=8
channels = chain
topology = line

# comment between sections
[experiment]
sweep-values =    4     2
sweep-key = overlap
max-slots = 200000
seed=9
trials = 5
delta-est = 4
algorithm = alg3
name = spec_test
)");
  EXPECT_EQ(base.canonical(), shuffled.canonical());
  EXPECT_EQ(scenario_hash(base), scenario_hash(shuffled));

  // Writing a default out explicitly is the same spec.
  const SweepSpec with_default =
      parse_or_die(std::string(kBaseSpec) + "universe = 8\n");
  EXPECT_EQ(scenario_hash(base), scenario_hash(with_default));
}

TEST(SweepSpec, HashCoversEveryEffectiveParameter) {
  const std::uint64_t base = scenario_hash(parse_or_die(kBaseSpec));
  const auto changed = [&](const std::string& extra) {
    return scenario_hash(parse_or_die(std::string(kBaseSpec) + extra));
  };
  EXPECT_NE(base, changed("universe = 16\n"));
  EXPECT_NE(base, changed("[experiment]\nseed = 10\n"));
  EXPECT_NE(base, changed("[experiment]\ntrials = 6\n"));
  EXPECT_NE(base, changed("[experiment]\nkernel = soa\n"));
  EXPECT_NE(base, changed("[experiment]\nname = other\n"));
  EXPECT_NE(base, changed("[faults]\ncrash-prob = 0.2\n"));
  // ini parse keeps the LAST assignment of a repeated key, so the
  // appended [experiment]/[scenario] lines above genuinely took effect.
}

TEST(SweepSpec, HashCoversBinaryVersion) {
  const SweepSpec spec = parse_or_die(kBaseSpec);
  const std::uint64_t before = scenario_hash(spec);
  ::setenv("M2HEW_BINARY_VERSION", "spec-test-fake-version", 1);
  const std::uint64_t after = scenario_hash(spec);
  ::unsetenv("M2HEW_BINARY_VERSION");
  EXPECT_NE(before, after);
  EXPECT_EQ(scenario_hash(spec), before);  // env restored -> key restored
}

constexpr const char* kMobileSpec = R"(
[experiment]
name = mobile_test
algorithm = alg3
delta-est = 8
trials = 4
seed = 3
max-slots = 2000
sweep-key = ud-radius
sweep-values = 0.3 0.4

[scenario]
topology = unit-disk
channels = uniform
n = 12
universe = 8
set-size = 4

[mobility]
epochs = 4
epoch-slots = 100
speed-min = 0.01
speed-max = 0.05
pause-epochs = 1
duty-on = 1
duty-period = 2
)";

TEST(SweepSpec, MobilityParsesAndCanonicalizes) {
  const SweepSpec spec = parse_or_die(kMobileSpec);
  EXPECT_TRUE(spec.mobility.enabled);
  EXPECT_EQ(spec.mobility.epochs, 4u);
  EXPECT_EQ(spec.mobility.epoch_slots, 100u);
  EXPECT_DOUBLE_EQ(spec.mobility.speed_min, 0.01);
  EXPECT_DOUBLE_EQ(spec.mobility.speed_max, 0.05);
  EXPECT_EQ(spec.mobility.pause_epochs, 1u);
  EXPECT_EQ(spec.mobility.duty_on, 1u);
  EXPECT_EQ(spec.mobility.duty_period, 2u);

  // The canonical form renders the mobility block, so mobile and static
  // specs can never alias in the artifact cache; a section written in a
  // different key order canonicalizes identically.
  EXPECT_NE(spec.canonical().find("[mobility]"), std::string::npos);
  EXPECT_NE(spec.canonical().find("epoch-slots = 100"), std::string::npos);
  const SweepSpec reordered = parse_or_die(R"(
[mobility]
duty-period = 2
duty-on = 1
pause-epochs = 1
speed-max = 0.05
speed-min = 0.01
epoch-slots = 100
epochs = 4

[scenario]
set-size = 4
universe = 8
n = 12
channels = uniform
topology = unit-disk

[experiment]
sweep-values = 0.3 0.4
sweep-key = ud-radius
max-slots = 2000
seed = 3
trials = 4
delta-est = 8
algorithm = alg3
name = mobile_test
)");
  EXPECT_EQ(spec.canonical(), reordered.canonical());
  EXPECT_EQ(scenario_hash(spec), scenario_hash(reordered));
}

TEST(SweepSpec, MobilityAffectsTheCacheKey) {
  const std::uint64_t base = scenario_hash(parse_or_die(kMobileSpec));
  const auto changed = [&](const std::string& extra) {
    return scenario_hash(parse_or_die(std::string(kMobileSpec) + extra));
  };
  EXPECT_NE(base, changed("[mobility]\nspeed-max = 0.1\n"));
  EXPECT_NE(base, changed("[mobility]\nepochs = 8\n"));
  EXPECT_NE(base, changed("[mobility]\nduty-period = 4\n"));
}

TEST(SweepSpec, MobilityValidation) {
  // The provider needs the unit-disk square and position-independent
  // channels; duty cycling wraps policy objects so it needs the engine
  // kernel; topology/channel-kind sweeps make no sense while mobility
  // regenerates the link set.
  EXPECT_NE(parse_error_of("[scenario]\ntopology = line\n"
                           "[mobility]\nepochs = 2\n"),
            "");
  EXPECT_NE(parse_error_of("[scenario]\ntopology = unit-disk\n"
                           "channels = chain\n"
                           "[mobility]\nepochs = 2\n"),
            "");
  EXPECT_NE(parse_error_of(std::string(kMobileSpec) +
                           "[experiment]\nkernel = soa\n"),
            "");
  // Full-duty soa IS allowed: the restriction is only the duty wrapper.
  const SweepSpec soa_full_duty = parse_or_die(
      std::string(kMobileSpec) + "[experiment]\nkernel = soa\n"
                                 "[mobility]\nduty-period = 1\n");
  EXPECT_EQ(soa_full_duty.kernel, runner::SyncKernel::kSoa);
  // Bad mobility ranges fail at submission.
  EXPECT_NE(parse_error_of(std::string(kMobileSpec) +
                           "[mobility]\nepoch-slots = 0\n"),
            "");
  EXPECT_NE(parse_error_of(std::string(kMobileSpec) +
                           "[mobility]\nspeed-min = 0.2\n"),
            "");
  EXPECT_NE(parse_error_of(std::string(kMobileSpec) +
                           "[mobility]\nduty-on = 3\n"),
            "");
  EXPECT_NE(parse_error_of(std::string(kMobileSpec) +
                           "[mobility]\nbanana = 1\n"),
            "");
}

constexpr const char* kAdversarySpec = R"(
[experiment]
name = adversary_test
algorithm = alg3
delta-est = 24
trials = 4
seed = 7
max-slots = 4000
sweep-key = ud-radius
sweep-values = 0.4 0.5

[scenario]
topology = unit-disk
channels = uniform
n = 12
universe = 6
set-size = 6

[adversary]
fraction = 0.25
attack = byzantine
byzantine-tx = 0.9
victim-fraction = 0.5
trust = 1
trust-threshold = 0.3
trust-reward = 0.02
trust-rate-penalty = 0.35
trust-decay = 0.999
trust-rate-window = 128
trust-max-per-window = 6
trust-block-slots = 4000
trust-entry-window = 8000
)";

TEST(SweepSpec, AdversaryParsesAndCanonicalizes) {
  const SweepSpec spec = parse_or_die(kAdversarySpec);
  EXPECT_DOUBLE_EQ(spec.faults.adversary.fraction, 0.25);
  EXPECT_EQ(spec.faults.adversary.attack, sim::AdversaryAttack::kByzantine);
  EXPECT_DOUBLE_EQ(spec.faults.adversary.byzantine_tx, 0.9);
  EXPECT_DOUBLE_EQ(spec.faults.adversary.victim_fraction, 0.5);
  EXPECT_TRUE(spec.trust.enabled);
  EXPECT_DOUBLE_EQ(spec.trust.threshold, 0.3);
  EXPECT_DOUBLE_EQ(spec.trust.reward, 0.02);
  EXPECT_DOUBLE_EQ(spec.trust.rate_penalty, 0.35);
  EXPECT_DOUBLE_EQ(spec.trust.decay, 0.999);
  EXPECT_EQ(spec.trust.rate_window, 128u);
  EXPECT_EQ(spec.trust.max_per_window, 6u);
  EXPECT_EQ(spec.trust.block_slots, 4000u);
  EXPECT_EQ(spec.trust.entry_window, 8000u);

  // The canonical form renders the adversary block, so attacked and clean
  // specs can never alias in the artifact cache; a section written in a
  // different key order canonicalizes identically.
  EXPECT_NE(spec.canonical().find("[adversary]"), std::string::npos);
  EXPECT_NE(spec.canonical().find("attack = byzantine"), std::string::npos);
  EXPECT_NE(spec.canonical().find("trust = 1"), std::string::npos);
  const SweepSpec reordered = parse_or_die(R"(
[adversary]
trust-entry-window = 8000
trust-block-slots = 4000
trust-max-per-window = 6
trust-rate-window = 128
trust-decay = 0.999
trust-rate-penalty = 0.35
trust-reward = 0.02
trust-threshold = 0.3
trust = 1
victim-fraction = 0.5
byzantine-tx = 0.9
attack = byzantine
fraction = 0.25

[scenario]
set-size = 6
universe = 6
n = 12
channels = uniform
topology = unit-disk

[experiment]
sweep-values = 0.4 0.5
sweep-key = ud-radius
max-slots = 4000
seed = 7
trials = 4
delta-est = 24
algorithm = alg3
name = adversary_test
)");
  EXPECT_EQ(spec.canonical(), reordered.canonical());
  EXPECT_EQ(scenario_hash(spec), scenario_hash(reordered));
}

TEST(SweepSpec, AdversaryAffectsTheCacheKey) {
  const std::uint64_t base = scenario_hash(parse_or_die(kAdversarySpec));
  const auto changed = [&](const std::string& extra) {
    return scenario_hash(parse_or_die(std::string(kAdversarySpec) + extra));
  };
  EXPECT_NE(base, changed("[adversary]\nfraction = 0.4\n"));
  EXPECT_NE(base, changed("[adversary]\nattack = mix\n"));
  EXPECT_NE(base, changed("[adversary]\nbyzantine-tx = 0.5\n"));
  EXPECT_NE(base, changed("[adversary]\ntrust = 0\n"));
  EXPECT_NE(base, changed("[adversary]\ntrust-threshold = 0.4\n"));
}

TEST(SweepSpec, AdversaryValidation) {
  // Unknown keys and malformed values must come back as recoverable
  // diagnostics — a daemon-submitted spec must never reach the aborting
  // CHECKs inside validate_fault_plan / validate_trust_config.
  EXPECT_NE(parse_error_of("[adversary]\nbanana = 1\n"), "");
  EXPECT_NE(parse_error_of("[adversary]\nfraction = lots\n"), "");
  EXPECT_NE(parse_error_of("[adversary]\nfraction = 1.5\n"), "");
  EXPECT_NE(parse_error_of("[adversary]\nattack = meteor\n"), "");
  EXPECT_NE(parse_error_of("[adversary]\nfraction = 0.2\n"
                           "byzantine-tx = 0\n"),
            "");
  EXPECT_NE(parse_error_of(std::string(kAdversarySpec) +
                           "[adversary]\ntrust-decay = 0\n"),
            "");
  EXPECT_NE(parse_error_of(std::string(kAdversarySpec) +
                           "[adversary]\ntrust-rate-window = 0\n"),
            "");
  // The trust wrapper needs per-node policy objects, which only the engine
  // kernel materializes.
  EXPECT_NE(parse_error_of(std::string(kAdversarySpec) +
                           "[experiment]\nkernel = soa\n"),
            "");
  // Untrusted adversaries on the SoA kernel ARE allowed: the adversary
  // model itself is honored by every execution path.
  const SweepSpec soa_untrusted = parse_or_die(
      std::string(kAdversarySpec) + "[experiment]\nkernel = soa\n"
                                    "[adversary]\ntrust = 0\n");
  EXPECT_EQ(soa_untrusted.kernel, runner::SyncKernel::kSoa);
  EXPECT_DOUBLE_EQ(soa_untrusted.faults.adversary.fraction, 0.25);
}

TEST(SweepSpec, FormatSweepValue) {
  EXPECT_EQ(format_sweep_value(4.0), "4");
  EXPECT_EQ(format_sweep_value(0.25), "0.25");
  EXPECT_EQ(format_sweep_value(-3.0), "-3");
}

TEST(ArtifactCache, HitMissStoreAndInvalidation) {
  char tmpl[] = "/tmp/m2hew_cache_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = std::string(tmpl) + "/cache";
  const ArtifactCache cache(dir);

  const SweepSpec spec = parse_or_die(kBaseSpec);
  const std::string key = scenario_hash_hex(spec);
  EXPECT_FALSE(cache.contains(key));  // cold cache: miss

  ASSERT_TRUE(cache.store(key, "{\"bench\": \"spec_test\"}\n"));
  EXPECT_TRUE(cache.contains(key));  // warm cache: hit
  {
    std::ifstream in(cache.path_for(key));
    std::string content;
    std::getline(in, content);
    EXPECT_EQ(content, "{\"bench\": \"spec_test\"}");
  }

  // A different effective spec — and the same spec under a different
  // binary version — address different entries (natural invalidation).
  const SweepSpec other =
      parse_or_die(std::string(kBaseSpec) + "[experiment]\nseed = 10\n");
  EXPECT_FALSE(cache.contains(scenario_hash_hex(other)));
  ::setenv("M2HEW_BINARY_VERSION", "rebuilt", 1);
  EXPECT_FALSE(cache.contains(scenario_hash_hex(spec)));
  ::unsetenv("M2HEW_BINARY_VERSION");
  EXPECT_TRUE(cache.contains(scenario_hash_hex(spec)));
}

}  // namespace
}  // namespace m2hew::service
