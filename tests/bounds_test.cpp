#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace m2hew::core {
namespace {

[[nodiscard]] BoundParams base_params() {
  BoundParams p;
  p.n = 16;
  p.s = 4;
  p.delta = 3;
  p.delta_est = 8;
  p.rho = 0.5;
  p.epsilon = 0.1;
  return p;
}

TEST(Bounds, Eq6StageCoverage) {
  const BoundParams p = base_params();
  // ρ / (16·max(S,Δ)) = 0.5 / (16·4).
  EXPECT_DOUBLE_EQ(eq6_stage_coverage_lower_bound(p), 0.5 / 64.0);
}

TEST(Bounds, Theorem1Formulas) {
  const BoundParams p = base_params();
  const double expected_stages =
      (16.0 * 4.0 / 0.5) * std::log(16.0 * 16.0 / 0.1);
  EXPECT_DOUBLE_EQ(theorem1_stage_bound(p), expected_stages);
  // ⌈log₂ 8⌉ = 3 slots per stage.
  EXPECT_DOUBLE_EQ(theorem1_slot_bound(p), expected_stages * 3.0);
}

TEST(Bounds, Theorem2AddsDeltaAndGrowsStages) {
  const BoundParams p = base_params();
  EXPECT_DOUBLE_EQ(theorem2_stage_bound(p),
                   theorem1_stage_bound(p) + 3.0);
  // Slot bound exceeds stage count (stages have length >= 1) and exceeds
  // Theorem 1's slot bound scaled by the growing stage length.
  EXPECT_GT(theorem2_slot_bound(p), theorem2_stage_bound(p));
}

TEST(Bounds, Theorem2SlotSummationExact) {
  BoundParams p = base_params();
  // Make the bound small and check the summation by hand: with stages = 4,
  // estimates are d = 2,3,4,5 -> lengths 1,2,2,3 -> 8 slots.
  p.n = 1;
  p.s = 1;
  p.delta = 1;
  p.rho = 1.0;
  p.epsilon = 0.9;
  // theorem1_stage_bound = 16·ln(1/0.9) ≈ 1.686; +Δ=1 -> ceil(2.686) = 3
  // stages: d=2,3,4 -> 1+2+2 = 5 slots.
  EXPECT_DOUBLE_EQ(theorem2_slot_bound(p), 5.0);
}

TEST(Bounds, Theorem3NoLogDeltaFactor) {
  const BoundParams p = base_params();
  const double expected =
      (8.0 * std::max(2.0 * 4.0, 8.0) / 0.5) * std::log(256.0 / 0.1);
  EXPECT_DOUBLE_EQ(theorem3_slot_bound(p), expected);
  EXPECT_DOUBLE_EQ(alg3_slot_coverage_lower_bound(p),
                   0.5 / (8.0 * 8.0));
}

TEST(Bounds, Lemma5AndTheorem9) {
  const BoundParams p = base_params();
  // max(2S, 3Δ_est) = max(8, 24) = 24.
  EXPECT_DOUBLE_EQ(lemma5_pair_coverage_lower_bound(p), 0.5 / (8.0 * 24.0));
  EXPECT_DOUBLE_EQ(theorem9_frame_bound(p),
                   (48.0 * 24.0 / 0.5) * std::log(256.0 / 0.1));
}

TEST(Bounds, Theorem10RealTime) {
  const BoundParams p = base_params();
  const double frames = theorem9_frame_bound(p);
  EXPECT_DOUBLE_EQ(theorem10_realtime_bound(p, 3.0, 1.0 / 7.0),
                   (frames + 1.0) * 3.0 / (1.0 - 1.0 / 7.0));
}

TEST(Bounds, MonotonicityInParameters) {
  const BoundParams p = base_params();

  BoundParams larger_n = p;
  larger_n.n *= 4;
  EXPECT_GT(theorem1_stage_bound(larger_n), theorem1_stage_bound(p));

  BoundParams smaller_rho = p;
  smaller_rho.rho = 0.25;
  EXPECT_GT(theorem1_stage_bound(smaller_rho), theorem1_stage_bound(p));
  EXPECT_GT(theorem3_slot_bound(smaller_rho), theorem3_slot_bound(p));
  EXPECT_GT(theorem9_frame_bound(smaller_rho), theorem9_frame_bound(p));

  BoundParams smaller_eps = p;
  smaller_eps.epsilon = 0.01;
  EXPECT_GT(theorem1_stage_bound(smaller_eps), theorem1_stage_bound(p));

  BoundParams bigger_dest = p;
  bigger_dest.delta_est = 64;
  EXPECT_GT(theorem1_slot_bound(bigger_dest), theorem1_slot_bound(p));
  EXPECT_GT(theorem3_slot_bound(bigger_dest), theorem3_slot_bound(p));
}

TEST(Bounds, RhoInverseProportionality) {
  // Halving ρ must exactly double every ρ-dependent bound.
  const BoundParams p = base_params();
  BoundParams half = p;
  half.rho = p.rho / 2.0;
  EXPECT_DOUBLE_EQ(theorem1_stage_bound(half), 2.0 * theorem1_stage_bound(p));
  EXPECT_DOUBLE_EQ(theorem3_slot_bound(half), 2.0 * theorem3_slot_bound(p));
  EXPECT_DOUBLE_EQ(theorem9_frame_bound(half), 2.0 * theorem9_frame_bound(p));
}

TEST(Bounds, AssumptionConstant) {
  EXPECT_DOUBLE_EQ(kMaxDriftAssumption, 1.0 / 7.0);
}

TEST(BoundsDeath, InvalidParamsAbort) {
  BoundParams p = base_params();
  p.rho = 0.0;
  EXPECT_DEATH((void)theorem1_stage_bound(p), "CHECK failed");
  p = base_params();
  p.epsilon = 1.0;
  EXPECT_DEATH((void)theorem3_slot_bound(p), "CHECK failed");
  p = base_params();
  p.n = 0;
  EXPECT_DEATH((void)theorem9_frame_bound(p), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::core
