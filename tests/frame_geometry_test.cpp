// Empirical validation of the frame-geometry lemmas of §IV (Lemma 4 and
// Lemma 7) directly on the clock substrate, independent of the engine:
// these are the structural facts Figures 1–4 of the paper illustrate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/clock.hpp"
#include "util/rng.hpp"

namespace m2hew::sim {
namespace {

constexpr double kL = 3.0;  // frame length (local units)

// Real-time boundary of frame k for a node that started at real time
// `start` (frame k spans local [local0 + kL, local0 + (k+1)L]).
[[nodiscard]] double frame_boundary(Clock& clock, double start, int k) {
  const double local0 = clock.local_at_real(start);
  return clock.real_at_local(local0 + kL * k);
}

// Real-time boundary of slot j (0..3) of frame k.
[[nodiscard]] double slot_boundary(Clock& clock, double start, int k, int j) {
  const double local0 = clock.local_at_real(start);
  return clock.real_at_local(local0 + kL * k + (kL / 3.0) * j);
}

// Number of frames of `other` that overlap (positively) frame k of `self`.
[[nodiscard]] int count_overlaps(Clock& self, Clock& other, double start_self,
                                 double start_other, int k, int horizon) {
  const double f_lo = frame_boundary(self, start_self, k);
  const double f_hi = frame_boundary(self, start_self, k + 1);
  int overlaps = 0;
  for (int m = 0; m < horizon; ++m) {
    const double g_lo = frame_boundary(other, start_other, m);
    const double g_hi = frame_boundary(other, start_other, m + 1);
    if (g_lo < f_hi && g_hi > f_lo) ++overlaps;
    if (g_lo >= f_hi) break;
  }
  return overlaps;
}

// True iff some slot of frame kf of `f_clock` lies completely within frame
// kg of `g_clock` (Definition 1: the pair is aligned).
[[nodiscard]] bool is_aligned(Clock& f_clock, double f_start, int kf,
                              Clock& g_clock, double g_start, int kg) {
  const double g_lo = frame_boundary(g_clock, g_start, kg);
  const double g_hi = frame_boundary(g_clock, g_start, kg + 1);
  for (int j = 0; j < 3; ++j) {
    const double s_lo = slot_boundary(f_clock, f_start, kf, j);
    const double s_hi = slot_boundary(f_clock, f_start, kf, j + 1);
    if (s_lo >= g_lo && s_hi <= g_hi) return true;
  }
  return false;
}

// Index of the first full frame of a node starting at/after time T.
[[nodiscard]] int first_full_frame_after(Clock& clock, double start,
                                         double t, int horizon) {
  for (int k = 0; k < horizon; ++k) {
    if (frame_boundary(clock, start, k) >= t) return k;
  }
  ADD_FAILURE() << "no frame after " << t << " within horizon";
  return horizon;
}

class FrameGeometry
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {
 protected:
  [[nodiscard]] std::unique_ptr<Clock> make_clock(std::uint64_t seed,
                                                  double delta,
                                                  double offset) const {
    return std::make_unique<PiecewiseDriftClock>(
        PiecewiseDriftClock::Config{.max_drift = delta,
                                    .min_segment = 2.0,
                                    .max_segment = 11.0,
                                    .offset = offset},
        seed);
  }
};

// Lemma 4: a frame of a node overlaps with at most three frames of any
// other node (requires δ ≤ 1/3; we sweep δ up to the paper's 1/7 bound).
TEST_P(FrameGeometry, Lemma4OverlapAtMostThree) {
  const auto [delta, seed] = GetParam();
  util::Rng rng(seed);
  const auto u = make_clock(seed * 2 + 1, delta,
                            rng.uniform_double(-10.0, 10.0));
  const auto v = make_clock(seed * 2 + 2, delta,
                            rng.uniform_double(-10.0, 10.0));
  const double start_u = rng.uniform_double(0.0, kL);
  const double start_v = rng.uniform_double(0.0, kL);
  for (int k = 0; k < 200; ++k) {
    EXPECT_LE(count_overlaps(*u, *v, start_u, start_v, k, 1000), 3)
        << "frame " << k;
  }
}

// Lemma 7: for any instant T, among the first two full frames of each of
// two nodes after T, some pair is aligned (requires δ ≤ 1/7).
TEST_P(FrameGeometry, Lemma7AlignedPairWithinTwoFrames) {
  const auto [delta, seed] = GetParam();
  if (delta > 1.0 / 7.0 + 1e-12) GTEST_SKIP() << "lemma needs delta <= 1/7";
  util::Rng rng(seed ^ 0x777);
  const auto u = make_clock(seed * 2 + 5, delta,
                            rng.uniform_double(-10.0, 10.0));
  const auto v = make_clock(seed * 2 + 6, delta,
                            rng.uniform_double(-10.0, 10.0));
  const double start_u = rng.uniform_double(0.0, kL);
  const double start_v = rng.uniform_double(0.0, kL);
  for (int i = 0; i < 100; ++i) {
    const double t =
        std::max(start_u, start_v) + rng.uniform_double(0.0, 300.0);
    const int fv = first_full_frame_after(*v, start_v, t, 10000);
    const int gu = first_full_frame_after(*u, start_u, t, 10000);
    bool aligned = false;
    for (int a = 0; a < 2 && !aligned; ++a) {
      for (int b = 0; b < 2 && !aligned; ++b) {
        aligned = is_aligned(*v, start_v, fv + a, *u, start_u, gu + b);
      }
    }
    EXPECT_TRUE(aligned) << "T=" << t << " delta=" << delta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DriftSweep, FrameGeometry,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.1, 1.0 / 7.0),
                       ::testing::Values(11u, 22u, 33u, 44u)));

// Counterexample construction: with δ > 1/3, Lemma 4's bound fails — a
// slow clock's frame (real length L/(1−δ)) strictly contains two fast
// frames (real length L/(1+δ) each), giving 4 overlaps.
TEST(FrameGeometryNegative, Lemma4FailsBeyondOneThirdDrift) {
  ConstantDriftClock slow(-0.5, 0.0);
  ConstantDriftClock fast(+0.5, 0.0);
  // Offset the fast node's start so frame boundaries do not coincide: the
  // slow node's 6-unit frames then overlap four 2-unit fast frames.
  int worst = 0;
  for (int k = 0; k < 50; ++k) {
    worst = std::max(worst,
                     count_overlaps(slow, fast, 0.0, 0.35, k, 2000));
  }
  EXPECT_GE(worst, 4);
}

// At the other extreme, with ideal synchronized clocks every frame overlaps
// exactly one frame of the other node (identical boundaries).
TEST(FrameGeometryNegative, IdealAlignedClocksOverlapExactlyOne) {
  IdealClock a(0.0);
  IdealClock b(0.0);
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(count_overlaps(a, b, 0.0, 0.0, k, 1000), 1);
  }
}

// Aligned-pair sanity: two ideal clocks offset by half a slot are aligned
// in every frame pair (slots 2 and 3 of f lie inside g's successor — check
// via the definition directly).
TEST(FrameGeometryNegative, IdealOffsetClocksAlign) {
  IdealClock f(0.0);
  IdealClock g(0.5);  // g's local time runs ahead by 0.5
  EXPECT_TRUE(is_aligned(f, 0.0, 1, g, 0.0, 1) ||
              is_aligned(f, 0.0, 1, g, 0.0, 2));
}

}  // namespace
}  // namespace m2hew::sim
