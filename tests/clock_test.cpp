#include "sim/clock.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace m2hew::sim {
namespace {

TEST(IdealClock, IdentityPlusOffset) {
  IdealClock c(5.0);
  EXPECT_DOUBLE_EQ(c.local_at_real(0.0), 5.0);
  EXPECT_DOUBLE_EQ(c.local_at_real(3.0), 8.0);
  EXPECT_DOUBLE_EQ(c.real_at_local(8.0), 3.0);
}

TEST(ConstantDriftClock, ForwardAndInverse) {
  ConstantDriftClock c(0.1, 2.0);
  EXPECT_DOUBLE_EQ(c.local_at_real(10.0), 2.0 + 11.0);
  EXPECT_DOUBLE_EQ(c.real_at_local(13.0), 10.0);
  EXPECT_DOUBLE_EQ(c.drift(), 0.1);
}

TEST(ConstantDriftClock, NegativeDriftSlowsClock) {
  ConstantDriftClock c(-0.2, 0.0);
  EXPECT_DOUBLE_EQ(c.local_at_real(10.0), 8.0);
  EXPECT_DOUBLE_EQ(c.real_at_local(8.0), 10.0);
}

TEST(ConstantDriftClockDeath, DriftAtMinusOneAborts) {
  EXPECT_DEATH(ConstantDriftClock(-1.0, 0.0), "CHECK failed");
}

TEST(PiecewiseDriftClock, ZeroDriftBehavesIdeally) {
  PiecewiseDriftClock c({.max_drift = 0.0, .offset = 3.0}, 42);
  for (double t = 0.0; t < 1000.0; t += 37.0) {
    EXPECT_NEAR(c.local_at_real(t), 3.0 + t, 1e-9);
  }
}

TEST(PiecewiseDriftClock, RoundTripInversion) {
  PiecewiseDriftClock c({.max_drift = 0.1, .offset = -7.0}, 1);
  for (double t = 0.0; t < 2000.0; t += 13.7) {
    const double local = c.local_at_real(t);
    EXPECT_NEAR(c.real_at_local(local), t, 1e-6);
  }
}

TEST(PiecewiseDriftClock, DeterministicAcrossQueryOrders) {
  PiecewiseDriftClock forward({.max_drift = 0.12}, 9);
  PiecewiseDriftClock backward({.max_drift = 0.12}, 9);
  // Query one clock ascending and the other descending; lazy segment
  // generation must not change the function.
  std::vector<double> ts;
  for (double t = 0.0; t < 1500.0; t += 41.3) ts.push_back(t);
  std::vector<double> fwd;
  fwd.reserve(ts.size());
  for (const double t : ts) fwd.push_back(forward.local_at_real(t));
  for (std::size_t i = ts.size(); i-- > 0;) {
    EXPECT_DOUBLE_EQ(backward.local_at_real(ts[i]), fwd[i]);
  }
}

TEST(PiecewiseDriftClock, StrictlyIncreasing) {
  PiecewiseDriftClock c({.max_drift = 0.14}, 5);
  double prev = c.local_at_real(0.0);
  for (double t = 0.5; t < 3000.0; t += 0.5) {
    const double cur = c.local_at_real(t);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

// Property sweep: eq. (1) of the paper — for every pair of instants,
// (1−δ)Δt ≤ C(t+Δt) − C(t) ≤ (1+δ)Δt — over several drift bounds and seeds.
class DriftBoundProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(DriftBoundProperty, Equation1Holds) {
  const auto [delta, seed] = GetParam();
  PiecewiseDriftClock clock(
      {.max_drift = delta, .min_segment = 10.0, .max_segment = 60.0}, seed);
  util::Rng rng(seed ^ 0xABCD);
  for (int i = 0; i < 500; ++i) {
    const double t = rng.uniform_double(0.0, 5000.0);
    const double dt = rng.uniform_double(0.0, 500.0);
    const double elapsed = clock.local_at_real(t + dt) - clock.local_at_real(t);
    EXPECT_GE(elapsed, (1.0 - delta) * dt - 1e-7);
    EXPECT_LE(elapsed, (1.0 + delta) * dt + 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DriftSweep, DriftBoundProperty,
    ::testing::Combine(::testing::Values(0.0, 0.01, 1.0 / 7.0, 0.3),
                       ::testing::Values(1u, 2u, 3u)));

TEST(PiecewiseDriftClockDeath, NegativeRealTimeAborts) {
  PiecewiseDriftClock c({.max_drift = 0.1}, 1);
  EXPECT_DEATH((void)c.local_at_real(-1.0), "CHECK failed");
}

TEST(PiecewiseDriftClockDeath, LocalBeforeStartAborts) {
  PiecewiseDriftClock c({.max_drift = 0.1, .offset = 10.0}, 1);
  EXPECT_DEATH((void)c.real_at_local(9.0), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::sim
