#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace m2hew::util {
namespace {

TEST(CsvEscape, PlainFieldUnquoted) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, SeparatorsAndQuotesGetQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"name", "value"});
  csv.field("alpha").field(1.5);
  csv.end_row();
  csv.field("beta").field(2LL);
  csv.end_row();
  EXPECT_EQ(out.str(), "name,value\nalpha,1.5\nbeta,2\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriter, NumericFormatsRoundTrip) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field(0.1).field(std::size_t{42}).field(-7);
  csv.end_row();
  EXPECT_EQ(out.str(), "0.10000000000000001,42,-7\n");
}

TEST(CsvWriter, QuotedFieldInRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("a,b").field("c");
  csv.end_row();
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(CsvWriter, NoHeaderIsAllowed) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("x").field("y");
  csv.end_row();
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriterDeath, ColumnCountMismatchAborts) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.field("only-one");
  EXPECT_DEATH(csv.end_row(), "CHECK failed");
}

TEST(CsvWriterDeath, EmptyRowAborts) {
  std::ostringstream out;
  CsvWriter csv(out);
  EXPECT_DEATH(csv.end_row(), "CHECK failed");
}

TEST(CsvWriterDeath, LateHeaderAborts) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.field("x");
  csv.end_row();
  EXPECT_DEATH(csv.header({"a"}), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::util
