// Contact bookkeeping for time-varying topologies (sim/encounter.hpp).
//
// EncounterIndex derives the contact schedule — maximal runs of
// consecutive epochs in which a directed arc exists — from a
// TopologyProvider, and EncounterTracker latches the first reception
// inside each contact. The scripted provider below pins the exact
// schedule semantics: run merging across epochs, clamping to the trial
// budget, the trailing run extending to max_slots (simulations past the
// schedule stay on the last epoch), and contacts starting at or beyond
// the budget being dropped.
#include "sim/encounter.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "net/channel_assign.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "net/topology_provider.hpp"

namespace m2hew {
namespace {

// A provider with a hand-written epoch schedule (all nodes on channel 0,
// so every arc is a discovery link whenever it exists):
//   epoch 0: 0-1          epoch 1: 0-1, 1-2       epoch 2: 1-2
// Union: 0-1, 1-2. With epoch_slots = 10 and max_slots = 30 the contact
// schedule is [0, 20) for both directions of 0-1 and [10, 30) for both
// directions of 1-2 (the 1-2 run is still open when the schedule ends).
class ScriptedProvider final : public net::TopologyProvider {
 public:
  ScriptedProvider() {
    epochs_.push_back(make_network({{0, 1}}));
    epochs_.push_back(make_network({{0, 1}, {1, 2}}));
    epochs_.push_back(make_network({{1, 2}}));
    union_.push_back(make_network({{0, 1}, {1, 2}}));
  }

  [[nodiscard]] std::size_t epoch_count() const noexcept override {
    return epochs_.size();
  }
  [[nodiscard]] const net::Network& epoch(std::size_t e) const override {
    return epochs_[e];
  }
  [[nodiscard]] const net::Network& union_network() const override {
    return union_.front();
  }

 private:
  [[nodiscard]] static net::Network make_network(
      const std::vector<std::pair<net::NodeId, net::NodeId>>& edges) {
    net::Topology topology(3);
    for (const auto& [a, b] : edges) topology.add_edge(a, b);
    topology.finalize();
    return {std::move(topology), net::homogeneous_assignment(3, 1, 1)};
  }

  std::vector<net::Network> epochs_;
  std::vector<net::Network> union_;
};

TEST(EncounterIndex, DerivesContactRunsFromEpochSchedule) {
  const ScriptedProvider provider;
  const sim::EncounterIndex index(provider, /*epoch_slots=*/10,
                                  /*max_slots=*/30);

  // Two directions of 0-1 plus two directions of 1-2.
  EXPECT_EQ(index.contact_count(), 4u);

  // 0-1 is active through epochs 0 and 1: one merged contact [0, 20).
  const std::size_t c01 = index.contact_at(0, 1, 0);
  ASSERT_NE(c01, sim::EncounterIndex::npos);
  EXPECT_EQ(index.contacts()[c01].start_slot, 0u);
  EXPECT_EQ(index.contacts()[c01].end_slot, 20u);
  EXPECT_EQ(index.contact_at(0, 1, 19), c01);
  EXPECT_EQ(index.contact_at(0, 1, 20), sim::EncounterIndex::npos);

  // 1-2 opens at epoch 1 and is still active when the schedule ends, so
  // its contact extends to the trial budget: [10, 30).
  EXPECT_EQ(index.contact_at(1, 2, 9), sim::EncounterIndex::npos);
  const std::size_t c12 = index.contact_at(1, 2, 10);
  ASSERT_NE(c12, sim::EncounterIndex::npos);
  EXPECT_EQ(index.contacts()[c12].start_slot, 10u);
  EXPECT_EQ(index.contacts()[c12].end_slot, 30u);
  EXPECT_EQ(index.contact_at(2, 1, 29), index.contact_at(2, 1, 10));

  // Arcs that never exist (or node pairs with no arc) have no contacts.
  EXPECT_EQ(index.contact_at(0, 2, 5), sim::EncounterIndex::npos);
  EXPECT_EQ(index.contact_at(2, 0, 5), sim::EncounterIndex::npos);
}

TEST(EncounterIndex, ClampsContactsToTheTrialBudget) {
  const ScriptedProvider provider;
  // Budget ends mid-contact: [10, 30) clamps to [10, 25).
  const sim::EncounterIndex index(provider, 10, 25);
  const std::size_t c = index.contact_at(1, 2, 12);
  ASSERT_NE(c, sim::EncounterIndex::npos);
  EXPECT_EQ(index.contacts()[c].start_slot, 10u);
  EXPECT_EQ(index.contacts()[c].end_slot, 25u);
  EXPECT_EQ(index.contact_at(1, 2, 25), sim::EncounterIndex::npos);
}

TEST(EncounterIndex, DropsContactsStartingBeyondTheBudget) {
  const ScriptedProvider provider;
  // max_slots = 10 ends the trial exactly when 1-2 would open: only the
  // two 0-1 contacts remain (clamped to [0, 10)).
  const sim::EncounterIndex index(provider, 10, 10);
  EXPECT_EQ(index.contact_count(), 2u);
  EXPECT_EQ(index.contact_at(1, 2, 5), sim::EncounterIndex::npos);
  const std::size_t c = index.contact_at(0, 1, 5);
  ASSERT_NE(c, sim::EncounterIndex::npos);
  EXPECT_EQ(index.contacts()[c].end_slot, 10u);
}

TEST(EncounterIndex, TrailingRunExtendsPastTheSchedule) {
  const ScriptedProvider provider;
  // A run longer than the schedule stays on the last epoch, so the open
  // 1-2 contact stretches to the full budget.
  const sim::EncounterIndex index(provider, 10, 50);
  const std::size_t c = index.contact_at(2, 1, 49);
  ASSERT_NE(c, sim::EncounterIndex::npos);
  EXPECT_EQ(index.contacts()[c].start_slot, 10u);
  EXPECT_EQ(index.contacts()[c].end_slot, 50u);
  // ... while the closed 0-1 contact keeps its schedule-derived end.
  EXPECT_EQ(index.contact_at(0, 1, 20), sim::EncounterIndex::npos);
}

TEST(EncounterIndex, SingleEpochProviderYieldsOneContactPerArc) {
  net::Topology topology(3);
  topology.add_edge(0, 1);
  topology.add_edge(1, 2);
  topology.finalize();
  const net::Network network(std::move(topology),
                             net::homogeneous_assignment(3, 1, 1));
  const net::StaticTopologyProvider provider(network);
  const sim::EncounterIndex index(provider, 10, 123);
  EXPECT_EQ(index.contact_count(), network.links().size());
  for (const sim::Contact& contact : index.contacts()) {
    EXPECT_EQ(contact.start_slot, 0u);
    EXPECT_EQ(contact.end_slot, 123u);
  }
}

TEST(EncounterTracker, LatchesFirstDetectionPerContact) {
  const ScriptedProvider provider;
  const sim::EncounterIndex index(provider, 10, 30);
  sim::EncounterTracker tracker(index);

  // Receptions outside any contact are ignored (1-2 opens at slot 10).
  tracker.on_reception(5, 1, 2);
  // First detection of 0->1 at slot 12; the slot-15 repeat must not move
  // the latency. 2->1 detected at 28 of [10, 30).
  tracker.on_reception(12, 0, 1);
  tracker.on_reception(15, 0, 1);
  tracker.on_reception(28, 2, 1);

  const sim::EncounterReport report = tracker.report();
  EXPECT_EQ(report.contacts, 4u);
  EXPECT_EQ(report.detected, 2u);
  ASSERT_EQ(report.detection_latency.size(), 2u);
  ASSERT_EQ(report.latency_over_duration.size(), 2u);
  // Report order is contact order (receiver-major): 0->1 then 2->1.
  EXPECT_DOUBLE_EQ(report.detection_latency[0], 12.0);
  EXPECT_DOUBLE_EQ(report.latency_over_duration[0], 12.0 / 20.0);
  EXPECT_DOUBLE_EQ(report.detection_latency[1], 18.0);
  EXPECT_DOUBLE_EQ(report.latency_over_duration[1], 18.0 / 20.0);
}

TEST(EncounterTracker, FreshTrackerReportsAllContactsMissed) {
  const ScriptedProvider provider;
  const sim::EncounterIndex index(provider, 10, 30);
  const sim::EncounterTracker tracker(index);
  const sim::EncounterReport report = tracker.report();
  EXPECT_EQ(report.contacts, 4u);
  EXPECT_EQ(report.detected, 0u);
  EXPECT_TRUE(report.detection_latency.empty());
}

}  // namespace
}  // namespace m2hew
