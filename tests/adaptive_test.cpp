#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "net/topology_gen.hpp"
#include "runner/trials.hpp"
#include "sim/slot_engine.hpp"

namespace m2hew::core {
namespace {

TEST(AdaptiveDegreePolicy, StartsAtInitialEstimate) {
  const net::ChannelSet a(4, {0, 1});
  const AdaptiveDegreePolicy policy(a);
  EXPECT_EQ(policy.current_estimate(), 2u);
}

TEST(AdaptiveDegreePolicy, CollisionRaisesEstimateMultiplicatively) {
  const net::ChannelSet a(4, {0, 1});
  AdaptiveTuning tuning;
  tuning.increase_factor = 2.0;
  AdaptiveDegreePolicy policy(a, tuning);
  policy.observe_listen_outcome(sim::ListenOutcome::kCollision);
  EXPECT_EQ(policy.current_estimate(), 4u);
  policy.observe_listen_outcome(sim::ListenOutcome::kCollision);
  EXPECT_EQ(policy.current_estimate(), 8u);
}

TEST(AdaptiveDegreePolicy, SmallFactorStillMakesProgress) {
  // With the default 1.25 factor the estimate must grow by at least 1 per
  // collision even from tiny values (integer truncation guard).
  const net::ChannelSet a(4, {0});
  AdaptiveDegreePolicy policy(a);
  policy.observe_listen_outcome(sim::ListenOutcome::kCollision);
  EXPECT_EQ(policy.current_estimate(), 3u);  // max(floor(2*1.25), 2+1)
}

TEST(AdaptiveDegreePolicy, EstimateIsCapped) {
  const net::ChannelSet a(4, {0});
  AdaptiveTuning tuning;
  tuning.increase_factor = 2.0;
  tuning.max_estimate = 16;
  AdaptiveDegreePolicy policy(a, tuning);
  for (int i = 0; i < 10; ++i) {
    policy.observe_listen_outcome(sim::ListenOutcome::kCollision);
  }
  EXPECT_EQ(policy.current_estimate(), 16u);
}

TEST(AdaptiveDegreePolicy, SilenceDecaysAfterStreak) {
  const net::ChannelSet a(4, {0});
  AdaptiveTuning tuning;
  tuning.increase_factor = 2.0;
  tuning.silence_before_decay = 3;
  AdaptiveDegreePolicy policy(a, tuning);
  policy.observe_listen_outcome(sim::ListenOutcome::kCollision);  // -> 4
  ASSERT_EQ(policy.current_estimate(), 4u);
  policy.observe_listen_outcome(sim::ListenOutcome::kSilence);
  policy.observe_listen_outcome(sim::ListenOutcome::kSilence);
  EXPECT_EQ(policy.current_estimate(), 4u);  // streak not reached yet
  policy.observe_listen_outcome(sim::ListenOutcome::kSilence);
  EXPECT_EQ(policy.current_estimate(), 3u);
}

TEST(AdaptiveDegreePolicy, ClearReceptionCountsTowardDecay) {
  // A clear message is a collision-free slot: it must feed the decay
  // streak, or busy networks would pin estimates high forever.
  const net::ChannelSet a(4, {0});
  AdaptiveTuning tuning;
  tuning.increase_factor = 2.0;
  tuning.silence_before_decay = 2;
  AdaptiveDegreePolicy policy(a, tuning);
  policy.observe_listen_outcome(sim::ListenOutcome::kCollision);  // -> 4
  policy.observe_listen_outcome(sim::ListenOutcome::kSilence);
  policy.observe_listen_outcome(sim::ListenOutcome::kClear);
  EXPECT_EQ(policy.current_estimate(), 3u);
}

TEST(AdaptiveDegreePolicy, EstimateNeverBelowOne) {
  const net::ChannelSet a(4, {0});
  AdaptiveTuning tuning;
  tuning.initial_estimate = 1;
  tuning.silence_before_decay = 1;
  AdaptiveDegreePolicy policy(a, tuning);
  for (int i = 0; i < 5; ++i) {
    policy.observe_listen_outcome(sim::ListenOutcome::kSilence);
  }
  EXPECT_EQ(policy.current_estimate(), 1u);
}

TEST(AdaptiveDegreePolicy, ActionsRespectChannelSet) {
  const net::ChannelSet a(16, {3, 9});
  AdaptiveDegreePolicy policy(a);
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto action = policy.next_slot(rng);
    EXPECT_TRUE(a.contains(action.channel));
    EXPECT_NE(action.mode, sim::Mode::kQuiet);
  }
}

TEST(AdaptiveIntegration, DiscoversCompleteTables) {
  const net::Network network(
      net::make_clique(10),
      std::vector<net::ChannelSet>(10, net::ChannelSet(4, {0, 1, 2, 3})));
  sim::SlotEngineConfig config;
  config.max_slots = 500000;
  config.seed = 6;
  const auto result = sim::run_slot_engine(network, make_adaptive(), config);
  ASSERT_TRUE(result.complete);
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    EXPECT_TRUE(result.state.table_matches_ground_truth(u));
  }
}

TEST(AdaptiveIntegration, ReliableOnDenseCliques) {
  // E16 quantifies the adaptive-vs-Algorithm-2 comparison (the adaptive
  // controller wins on small/sparse instances and loses on dense cliques
  // where the blind sweep is already near-optimal); here we only pin
  // reliability and a sane latency envelope.
  const net::Network network(
      net::make_clique(16),
      std::vector<net::ChannelSet>(16, net::ChannelSet(4, {0, 1, 2, 3})));
  runner::SyncTrialConfig trial;
  trial.trials = 20;
  trial.seed = 77;
  trial.engine.max_slots = 2'000'000;
  const auto adaptive = runner::run_sync_trials(network, make_adaptive(),
                                                trial);
  const auto alg2 = runner::run_sync_trials(network, make_algorithm2(),
                                            trial);
  ASSERT_EQ(adaptive.completed, trial.trials);
  ASSERT_EQ(alg2.completed, trial.trials);
  EXPECT_LT(adaptive.completion_slots.summarize().mean,
            20.0 * alg2.completion_slots.summarize().mean);
}

TEST(AdaptiveDeath, BadTuningAborts) {
  const net::ChannelSet a(4, {0});
  AdaptiveTuning tuning;
  tuning.increase_factor = 1.0;
  EXPECT_DEATH(AdaptiveDegreePolicy(a, tuning), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::core
