#include "runner/link_stats.hpp"

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "net/topology_gen.hpp"

namespace m2hew::runner {
namespace {

// Star with one deliberately narrow link: the hub shares 4 channels with
// nodes 1 and 2 but only 1 channel with node 3, so links touching node 3
// have span-ratio 1/4 at the hub side and must be the slow ones.
[[nodiscard]] net::Network narrow_link_network() {
  net::Topology t(4);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  t.add_edge(0, 3);
  return net::Network(std::move(t),
                      {net::ChannelSet(5, {0, 1, 2, 3}),
                       net::ChannelSet(5, {0, 1, 2, 3}),
                       net::ChannelSet(5, {0, 1, 2, 3}),
                       net::ChannelSet(5, {3, 4})});
}

TEST(LinkStats, ReportShapeAndCompleteness) {
  const net::Network network = narrow_link_network();
  sim::SlotEngineConfig engine;
  engine.max_slots = 500000;
  const auto report = measure_link_latencies(
      network, core::make_algorithm3(4), engine, 20, 11);
  EXPECT_EQ(report.trials, 20u);
  EXPECT_EQ(report.completed, 20u);
  ASSERT_EQ(report.links.size(), network.links().size());
  for (std::size_t i = 0; i < report.links.size(); ++i) {
    EXPECT_EQ(report.links[i].link, network.links()[i]);
    EXPECT_DOUBLE_EQ(report.links[i].span_ratio,
                     network.span_ratio(report.links[i].link));
    EXPECT_GE(report.links[i].max_first_coverage,
              report.links[i].mean_first_coverage);
  }
}

TEST(LinkStats, NarrowLinkIsSlowest) {
  const net::Network network = narrow_link_network();
  sim::SlotEngineConfig engine;
  engine.max_slots = 500000;
  const auto report = measure_link_latencies(
      network, core::make_algorithm3(4), engine, 40, 12);
  const auto& slowest = report.slowest();
  // The slow direction is (3, 0): node 0 listens on 4 channels but only
  // one of them carries node 3 (span-ratio 1/4) — or its reverse (0, 3),
  // whose sender picks the single common channel rarely... the hub-side
  // ratio is the binding one per the paper's span-ratio definition.
  EXPECT_TRUE(slowest.link.from == 3 || slowest.link.to == 3)
      << slowest.link.from << "->" << slowest.link.to;
  EXPECT_LT(slowest.span_ratio, 0.6);
}

TEST(LinkStats, InverseRatioCorrelationPositiveOnHeterogeneous) {
  const net::Network network = narrow_link_network();
  sim::SlotEngineConfig engine;
  engine.max_slots = 500000;
  const auto report = measure_link_latencies(
      network, core::make_algorithm3(4), engine, 40, 13);
  EXPECT_GT(report.inverse_ratio_correlation, 0.5);
}

TEST(LinkStats, HomogeneousNetworkHasZeroCorrelation) {
  const net::Network network(
      net::make_clique(5),
      std::vector<net::ChannelSet>(5, net::ChannelSet(3, {0, 1, 2})));
  sim::SlotEngineConfig engine;
  engine.max_slots = 500000;
  const auto report = measure_link_latencies(
      network, core::make_algorithm3(4), engine, 10, 14);
  // All span ratios identical -> no variance on the x side -> defined 0.
  EXPECT_DOUBLE_EQ(report.inverse_ratio_correlation, 0.0);
}

TEST(LinkStats, IncompleteTrialsAreExcluded) {
  const net::Network network = narrow_link_network();
  sim::SlotEngineConfig engine;
  engine.max_slots = 2;  // nothing completes
  const auto report = measure_link_latencies(
      network, core::make_algorithm3(4), engine, 5, 15);
  EXPECT_EQ(report.completed, 0u);
  for (const auto& entry : report.links) {
    EXPECT_DOUBLE_EQ(entry.mean_first_coverage, 0.0);
  }
}

TEST(LinkStatsDeath, SlowestOnEmptyReportAborts) {
  LinkLatencyReport report;
  EXPECT_DEATH((void)report.slowest(), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::runner
