// Parameterized property sweeps tying the simulated system to the paper's
// probabilistic guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/algorithms.hpp"
#include "core/bounds.hpp"
#include "core/transmit_probability.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"

namespace m2hew {
namespace {

using runner::ChannelKind;
using runner::ScenarioConfig;
using runner::TopologyKind;

[[nodiscard]] core::BoundParams params_of(const net::Network& network,
                                          std::size_t delta_est,
                                          double epsilon) {
  core::BoundParams p;
  p.n = network.node_count();
  p.s = network.max_channel_set_size();
  p.delta = std::max<std::size_t>(1, network.max_channel_degree());
  p.delta_est = delta_est;
  p.rho = network.min_span_ratio();
  p.epsilon = epsilon;
  return p;
}

// Theorem 1 / Theorem 3 guarantee: running the algorithm for its theorem
// slot budget succeeds with probability >= 1 - ε. We check the empirical
// success rate's upper confidence bound stays above 1 - ε.
class TheoremBudgetSuccess : public ::testing::TestWithParam<double> {};

TEST_P(TheoremBudgetSuccess, Algorithm1MeetsEpsilonAtTheoremBudget) {
  const double epsilon = GetParam();
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 6;
  config.channels = ChannelKind::kUniformRandom;
  config.universe = 6;
  config.set_size = 3;
  const net::Network network = runner::build_scenario(config, 31);
  const std::size_t delta_est = 8;
  const auto bound = static_cast<std::uint64_t>(
      std::ceil(core::theorem1_slot_bound(params_of(network, delta_est,
                                                    epsilon))));
  runner::SyncTrialConfig trial;
  trial.trials = 60;
  trial.seed = 777;
  trial.engine.max_slots = bound;
  const auto stats = runner::run_sync_trials(
      network, core::make_algorithm1(delta_est), trial);
  // The theorem promises >= 1 - ε; with 60 trials allow one standard
  // binomial fluctuation below it.
  const double guarantee = 1.0 - epsilon;
  const double slack =
      2.0 * std::sqrt(guarantee * (1.0 - guarantee) / 60.0) + 1e-9;
  EXPECT_GE(stats.success_rate(), guarantee - slack)
      << "epsilon=" << epsilon << " budget=" << bound;
}

TEST_P(TheoremBudgetSuccess, Algorithm3MeetsEpsilonAtTheoremBudget) {
  const double epsilon = GetParam();
  ScenarioConfig config;
  config.topology = TopologyKind::kErdosRenyi;
  config.n = 10;
  config.er_edge_probability = 0.5;
  config.channels = ChannelKind::kUniformRandom;
  config.universe = 8;
  config.set_size = 4;
  const net::Network network = runner::build_scenario(config, 32);
  const std::size_t delta_est = 16;
  const auto bound = static_cast<std::uint64_t>(
      std::ceil(core::theorem3_slot_bound(params_of(network, delta_est,
                                                    epsilon))));
  runner::SyncTrialConfig trial;
  trial.trials = 60;
  trial.seed = 778;
  trial.engine.max_slots = bound;
  const auto stats = runner::run_sync_trials(
      network, core::make_algorithm3(delta_est), trial);
  const double guarantee = 1.0 - epsilon;
  const double slack =
      2.0 * std::sqrt(std::max(guarantee * (1.0 - guarantee), 0.01) / 60.0) +
      1e-9;
  EXPECT_GE(stats.success_rate(), guarantee - slack);
}

INSTANTIATE_TEST_SUITE_P(EpsilonSweep, TheoremBudgetSuccess,
                         ::testing::Values(0.5, 0.2, 0.1));

// ρ-monotonicity: on the exact-ρ chain construction, shrinking the overlap
// (smaller ρ) must not speed discovery up — mean completion time grows.
TEST(RhoMonotonicityProperty, SmallerOverlapIsSlower) {
  double previous_mean = 0.0;
  for (const net::ChannelId overlap : {4u, 2u, 1u}) {  // ρ = 1, 1/2, 1/4
    ScenarioConfig config;
    config.topology = TopologyKind::kLine;
    config.n = 8;
    config.channels = ChannelKind::kChainOverlap;
    config.set_size = 4;
    config.chain_overlap = overlap;
    const net::Network network = runner::build_scenario(config, 33);
    runner::SyncTrialConfig trial;
    trial.trials = 40;
    trial.seed = 900 + overlap;
    trial.engine.max_slots = 1000000;
    const auto stats = runner::run_sync_trials(
        network, core::make_algorithm3(4), trial);
    ASSERT_EQ(stats.completed, trial.trials);
    const double mean = stats.completion_slots.summarize().mean;
    EXPECT_GT(mean, previous_mean)
        << "overlap=" << overlap << " should be slower than larger overlap";
    previous_mean = mean;
  }
}

// Coverage-probability lower bound (eq. 6): the measured per-stage coverage
// probability of a specific link under Algorithm 1 is at least the bound.
TEST(CoverageProbabilityProperty, StageCoverageAboveEq6Bound) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 5;
  config.universe = 4;
  config.set_size = 4;
  const net::Network network = runner::build_scenario(config, 34);
  const std::size_t delta_est = 4;
  const unsigned stage_slots = core::stage_length(delta_est);

  const net::Link link = network.links()[0];
  std::size_t covered = 0;
  constexpr std::size_t kTrials = 4000;
  for (std::size_t t = 0; t < kTrials; ++t) {
    sim::SlotEngineConfig engine;
    engine.max_slots = stage_slots;  // exactly one stage
    engine.seed = 5000 + t;
    engine.stop_when_complete = false;
    const auto result = sim::run_slot_engine(
        network, core::make_algorithm1(delta_est), engine);
    if (result.state.is_covered(link)) ++covered;
  }
  const double measured =
      static_cast<double>(covered) / static_cast<double>(kTrials);
  const double bound = core::eq6_stage_coverage_lower_bound(
      params_of(network, delta_est, 0.1));
  // Allow binomial noise on the measured side.
  const double noise = 2.0 * std::sqrt(measured * (1.0 - measured) /
                                       static_cast<double>(kTrials));
  EXPECT_GE(measured + noise, bound);
}

// Failure probability decays with budget: doubling the slot budget must not
// decrease the success rate (monotone property over the sweep).
class BudgetMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BudgetMonotonicity, LongerBudgetsNeverHurt) {
  const std::uint64_t budget = GetParam();
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 6;
  config.universe = 4;
  config.set_size = 4;
  const net::Network network = runner::build_scenario(config, 35);
  runner::SyncTrialConfig trial;
  trial.trials = 40;
  trial.seed = 4242;  // same seeds across parameterizations
  trial.engine.max_slots = budget;
  const auto stats = runner::run_sync_trials(
      network, core::make_algorithm3(8), trial);
  // With identical seeds, a longer prefix can only cover more links:
  // completion within `budget` implies completion within any larger budget.
  static std::map<std::uint64_t, double> rates;
  rates[budget] = stats.success_rate();
  for (const auto& [b, rate] : rates) {
    if (b < budget) {
      EXPECT_LE(rate, stats.success_rate() + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetMonotonicity,
                         ::testing::Values(50u, 200u, 800u, 3200u));

// Discovery time distribution is heavier for the last links: p99 over
// trials is at least the median (sanity on the aggregation pipeline).
TEST(AggregationSanity, QuantilesOrdered) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 6;
  config.universe = 4;
  config.set_size = 4;
  const net::Network network = runner::build_scenario(config, 36);
  runner::SyncTrialConfig trial;
  trial.trials = 50;
  trial.engine.max_slots = 100000;
  const auto stats = runner::run_sync_trials(
      network, core::make_algorithm1(8), trial);
  const auto summary = stats.completion_slots.summarize();
  EXPECT_LE(summary.min, summary.p50);
  EXPECT_LE(summary.p50, summary.p90);
  EXPECT_LE(summary.p90, summary.p95);
  EXPECT_LE(summary.p95, summary.p99);
  EXPECT_LE(summary.p99, summary.max);
}

}  // namespace
}  // namespace m2hew
