// Engine-parity property test: the multi-radio engine restricted to one
// radio per node IS the slot engine.
//
// Both engines now share the channel-medium core (EngineCommon config,
// TrialSetup seeding, SlotMedium resolution), so running
// run_multi_radio_engine over core::as_multi_radio(factory) must be
// *bit-identical* to run_slot_engine over `factory` — same DiscoveryState
// (including first-coverage times), same activity counters, same
// completion slot — for any topology, channel assignment, policy, loss
// rate, interference schedule, start pattern and seed, on both the
// indexed and the reference reception paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/adaptive.hpp"
#include "core/algorithms.hpp"
#include "core/multi_radio.hpp"
#include "core/termination.hpp"
#include "net/channel_assign.hpp"
#include "net/primary_user.hpp"
#include "net/propagation.hpp"
#include "net/topology_gen.hpp"
#include "sim/fault_plan.hpp"
#include "sim/multi_radio_engine.hpp"
#include "sim/slot_engine.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

// Soak runs (ci.yml) export M2HEW_SOAK_SEED to shift every scenario seed,
// widening property coverage across scheduled runs without code changes.
[[nodiscard]] std::uint64_t soak_offset() {
  const char* env = std::getenv("M2HEW_SOAK_SEED");
  return env == nullptr ? 0 : std::strtoull(env, nullptr, 10);
}

// Deterministic pseudo-random interference field (same recipe as the
// engine-equivalence test): active ~20% of the time, decorrelated across
// (slot, node, channel).
[[nodiscard]] bool pseudo_pu(std::uint64_t slot, net::NodeId node,
                             net::ChannelId channel) {
  std::uint64_t h = (slot + 1) * 0x9E3779B97F4A7C15ull;
  h ^= (static_cast<std::uint64_t>(node) + 1) * 0xBF58476D1CE4E5B9ull;
  h ^= (static_cast<std::uint64_t>(channel) + 1) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h % 5 == 0;
}

[[nodiscard]] net::Network random_network(util::Rng& rng, std::uint64_t seed,
                                          net::NodeId n, bool asymmetric,
                                          bool masked) {
  net::Topology topology = net::make_erdos_renyi(n, 0.45, rng);
  if (asymmetric) topology = net::make_asymmetric(topology, 0.4, rng);
  auto assignment = net::uniform_random_assignment(n, 6, 3, rng);
  return masked ? net::Network(std::move(topology), std::move(assignment),
                               net::random_propagation_filter(6, 0.7, seed))
                : net::Network(std::move(topology), std::move(assignment));
}

// Randomized fault plan (same recipe as the engine-equivalence test):
// churn, burst loss and scheduled spectrum faults mixed in by seed bits.
// Parity must hold with ANY plan attached — the plan lives in the shared
// SlotEngineCommon slice, so the assignment below carries it over.
[[nodiscard]] sim::SlotFaultPlan make_fault_plan(std::uint64_t seed,
                                                 net::NodeId n,
                                                 double horizon) {
  sim::SlotFaultPlan plan;
  util::Rng rng(seed ^ 0xFA157);
  if (seed % 2 == 0) {
    plan.churn.crash_probability = 0.3 + 0.2 * static_cast<double>(seed % 3);
    plan.churn.earliest_crash = static_cast<std::uint64_t>(horizon * 0.05);
    plan.churn.latest_crash = static_cast<std::uint64_t>(horizon * 0.5);
    plan.churn.min_down = static_cast<std::uint64_t>(horizon * 0.05);
    plan.churn.max_down = static_cast<std::uint64_t>(horizon * 0.3);
    plan.churn.reset_policy_on_recovery = (seed % 4) == 0;
  }
  if (seed % 3 == 0) {
    plan.burst_loss.enabled = true;
    plan.burst_loss.p_good_to_bad = 0.05;
    plan.burst_loss.p_bad_to_good = 0.2;
    plan.burst_loss.loss_good = 0.02;
    plan.burst_loss.loss_bad = 0.8;
  }
  if (seed % 5 == 0) {
    for (net::NodeId u = 0; u < n; ++u) {
      plan.positions.push_back(
          {rng.uniform_double(), rng.uniform_double()});
    }
    for (int i = 0; i < 4; ++i) {
      net::ScheduledPrimaryUser pu;
      pu.user.position = {rng.uniform_double(), rng.uniform_double()};
      pu.user.radius = 0.3 + 0.3 * rng.uniform_double();
      pu.user.channel = static_cast<net::ChannelId>(rng.uniform(6));
      pu.on_from = horizon * 0.6 * rng.uniform_double();
      pu.on_until = pu.on_from + horizon * 0.3 * rng.uniform_double();
      plan.spectrum.push_back(pu);
    }
  }
  if (seed % 2 == 1) {
    plan.adversary.fraction = 0.2 + 0.2 * static_cast<double>(seed % 3);
    plan.adversary.attack = static_cast<sim::AdversaryAttack>(seed % 4);
    plan.adversary.byzantine_tx = 0.6;
    plan.adversary.victim_fraction = 0.5;
  }
  return plan;
}

void expect_same_state(const net::Network& network,
                       const sim::DiscoveryState& a,
                       const sim::DiscoveryState& b) {
  EXPECT_EQ(a.covered_links(), b.covered_links());
  EXPECT_EQ(a.reception_count(), b.reception_count());
  for (const net::Link link : network.links()) {
    ASSERT_EQ(a.is_covered(link), b.is_covered(link))
        << "link " << link.from << "->" << link.to;
    if (a.is_covered(link)) {
      EXPECT_DOUBLE_EQ(a.first_coverage_time(link),
                       b.first_coverage_time(link))
          << "link " << link.from << "->" << link.to;
    }
  }
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    const auto& ta = a.neighbor_table(u);
    const auto& tb = b.neighbor_table(u);
    ASSERT_EQ(ta.size(), tb.size()) << "table of node " << u;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].neighbor, tb[i].neighbor)
          << "table of node " << u << " entry " << i;
    }
  }
}

class EngineParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineParity, SingleRadioMatchesSlotEngine) {
  const std::uint64_t seed = GetParam() + soak_offset();
  util::Rng rng(seed ^ 0x5151);
  const auto n = static_cast<net::NodeId>(8 + 8 * (seed % 3));
  const net::Network network = random_network(
      rng, seed, n, /*asymmetric=*/(seed % 2) != 0, /*masked=*/(seed % 3) == 0);

  sim::SlotEngineConfig slot_config;
  slot_config.max_slots = 400;
  slot_config.seed = seed;
  slot_config.stop_when_complete = (seed % 2) != 0;
  slot_config.indexed_reception = (seed % 2) == 0;
  slot_config.loss_probability = (seed % 3 == 1) ? 0.25 : 0.0;
  if (seed % 2 == 0) {
    slot_config.interference = [](std::uint64_t slot, net::NodeId node,
                                  net::ChannelId c) {
      return pseudo_pu(slot, node, c);
    };
  }
  slot_config.starts.assign(n, 0);
  for (auto& s : slot_config.starts) s = rng.uniform(25);
  slot_config.faults = make_fault_plan(seed, n, 400.0);
  if (slot_config.faults.burst_loss.enabled) {
    slot_config.loss_probability = 0.0;
  }

  sim::SyncPolicyFactory factory;
  switch (seed % 4) {
    case 0:
      factory = core::make_algorithm1(16);
      break;
    case 1:
      factory = core::make_algorithm2();
      break;
    case 2:
      factory = core::make_algorithm3(8);
      break;
    default:
      // Feedback-driven policy under a wrapper: proves the adapter
      // forwards observe_listen_outcome / observe_reception faithfully
      // (a forwarding bug would desynchronize the policies' actions).
      factory = core::with_termination(core::make_adaptive(), 60);
      break;
  }

  // The multi-radio config carries the identical shared knobs; the slices
  // copy exactly because both inherit SlotEngineCommon.
  sim::MultiRadioEngineConfig multi_config;
  static_cast<sim::SlotEngineCommon&>(multi_config) = slot_config;
  multi_config.max_slots = slot_config.max_slots;

  const auto single = sim::run_slot_engine(network, factory, slot_config);
  const auto multi = sim::run_multi_radio_engine(
      network, core::as_multi_radio(factory), multi_config);

  EXPECT_EQ(single.complete, multi.complete);
  EXPECT_EQ(single.completion_slot, multi.completion_slot);
  EXPECT_EQ(single.slots_executed, multi.slots_executed);
  EXPECT_EQ(single.robustness.enabled, multi.robustness.enabled);
  EXPECT_EQ(single.robustness.crashed_nodes, multi.robustness.crashed_nodes);
  EXPECT_EQ(single.robustness.ghost_entries, multi.robustness.ghost_entries);
  EXPECT_EQ(single.robustness.surviving_links,
            multi.robustness.surviving_links);
  EXPECT_EQ(single.robustness.covered_surviving_links,
            multi.robustness.covered_surviving_links);
  EXPECT_EQ(single.robustness.rediscovered_links,
            multi.robustness.rediscovered_links);
  EXPECT_DOUBLE_EQ(single.robustness.mean_rediscovery,
                   multi.robustness.mean_rediscovery);
  ASSERT_EQ(single.activity.size(), multi.activity.size());
  for (std::size_t u = 0; u < single.activity.size(); ++u) {
    EXPECT_EQ(single.activity[u].transmit, multi.activity[u].transmit)
        << "node " << u;
    EXPECT_EQ(single.activity[u].receive, multi.activity[u].receive)
        << "node " << u;
    EXPECT_EQ(single.activity[u].quiet, multi.activity[u].quiet)
        << "node " << u;
  }
  expect_same_state(network, single.state, multi.state);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineParity,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace m2hew
