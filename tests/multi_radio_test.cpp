#include "core/multi_radio.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "net/topology_gen.hpp"
#include "runner/trials.hpp"
#include "sim/slot_engine.hpp"
#include "util/stats.hpp"

namespace m2hew {
namespace {

// Scripted multi-radio policy replaying fixed per-slot action vectors.
class ScriptedMultiPolicy final : public sim::MultiRadioPolicy {
 public:
  explicit ScriptedMultiPolicy(
      std::vector<std::vector<sim::SlotAction>> script)
      : script_(std::move(script)) {}
  std::vector<sim::SlotAction> next_slot(util::Rng&) override {
    const auto& step = script_[std::min(index_, script_.size() - 1)];
    ++index_;
    return step;
  }
  unsigned radio_count() const override {
    return static_cast<unsigned>(script_.front().size());
  }

 private:
  std::vector<std::vector<sim::SlotAction>> script_;
  std::size_t index_ = 0;
};

[[nodiscard]] sim::MultiRadioPolicyFactory scripted(
    std::vector<std::vector<std::vector<sim::SlotAction>>> per_node) {
  auto shared = std::make_shared<decltype(per_node)>(std::move(per_node));
  return [shared](const net::Network&, net::NodeId u)
             -> std::unique_ptr<sim::MultiRadioPolicy> {
    return std::make_unique<ScriptedMultiPolicy>((*shared)[u]);
  };
}

constexpr sim::SlotAction kTx0{sim::Mode::kTransmit, 0};
constexpr sim::SlotAction kTx1{sim::Mode::kTransmit, 1};
constexpr sim::SlotAction kRx0{sim::Mode::kReceive, 0};
constexpr sim::SlotAction kRx1{sim::Mode::kReceive, 1};
constexpr sim::SlotAction kQuiet{sim::Mode::kQuiet, net::kInvalidChannel};

[[nodiscard]] net::Network pair_net() {
  net::Topology t(2);
  t.add_edge(0, 1);
  return net::Network(std::move(t), std::vector<net::ChannelSet>(
                                        2, net::ChannelSet(2, {0, 1})));
}

TEST(MultiRadioEngine, ParallelReceptionOnTwoChannels) {
  // Node 0 transmits on both channels simultaneously; node 1 listens on
  // both: the link (0,1) is covered in slot 0 via either radio, and node
  // 1's radios do not interfere with each other.
  const net::Network network = pair_net();
  sim::MultiRadioEngineConfig config;
  config.max_slots = 1;
  config.stop_when_complete = false;
  const auto result = sim::run_multi_radio_engine(
      network, scripted({{{kTx0, kTx1}}, {{kRx0, kRx1}}}), config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
}

TEST(MultiRadioEngine, SimultaneousBidirectionalDiscovery) {
  // Full duplex across radios: each node transmits on one channel and
  // listens on the other — both directions covered in a single slot,
  // impossible with one transceiver.
  const net::Network network = pair_net();
  sim::MultiRadioEngineConfig config;
  config.max_slots = 1;
  config.stop_when_complete = false;
  const auto result = sim::run_multi_radio_engine(
      network, scripted({{{kTx0, kRx1}}, {{kRx0, kTx1}}}), config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
  EXPECT_TRUE(result.state.is_covered({1, 0}));
  EXPECT_TRUE(result.complete);
}

TEST(MultiRadioEngine, CollisionsAcrossSendersStillHappen) {
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(2, {0, 1})));
  sim::MultiRadioEngineConfig config;
  config.max_slots = 1;
  config.stop_when_complete = false;
  // Both neighbors transmit on channel 0 while the hub listens there.
  const auto result = sim::run_multi_radio_engine(
      network,
      scripted({{{kRx0, kQuiet}}, {{kTx0, kQuiet}}, {{kTx0, kQuiet}}}),
      config);
  EXPECT_EQ(result.state.covered_links(), 0u);
}

TEST(MultiRadioEngineDeath, DuplicateChannelAcrossRadiosAborts) {
  const net::Network network = pair_net();
  sim::MultiRadioEngineConfig config;
  config.max_slots = 1;
  EXPECT_DEATH(
      (void)sim::run_multi_radio_engine(
          network, scripted({{{kTx0, kRx0}}, {{kRx1, kQuiet}}}), config),
      "CHECK failed");
}

TEST(MultiRadioAlg3Policy, StripesPartitionTheChannelSet) {
  const net::ChannelSet a(8, {0, 1, 2, 3, 4, 5, 6, 7});
  core::MultiRadioAlg3Policy policy(a, 3, 8);
  std::size_t total = 0;
  for (unsigned r = 0; r < 3; ++r) {
    for (const net::ChannelId c : policy.stripe(r)) {
      EXPECT_EQ(c % 3, r);
      ++total;
    }
  }
  EXPECT_EQ(total, 8u);
}

TEST(MultiRadioAlg3Policy, EmptyStripeStaysQuiet) {
  const net::ChannelSet a(8, {0, 2, 4});  // all even: stripe 1 of 2 empty
  core::MultiRadioAlg3Policy policy(a, 2, 4);
  EXPECT_TRUE(policy.stripe(1).empty());
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto actions = policy.next_slot(rng);
    ASSERT_EQ(actions.size(), 2u);
    EXPECT_EQ(actions[1].mode, sim::Mode::kQuiet);
    EXPECT_NE(actions[0].mode, sim::Mode::kQuiet);
    EXPECT_EQ(actions[0].channel % 2, 0u);
  }
}

TEST(MultiRadioAlg3Policy, SingleRadioEqualsAlgorithm3Distribution) {
  const net::ChannelSet a(4, {0, 1, 2, 3});
  core::MultiRadioAlg3Policy policy(a, 1, 16);
  util::Rng rng(2);
  int tx = 0;
  constexpr int kSlots = 40000;
  for (int i = 0; i < kSlots; ++i) {
    const auto actions = policy.next_slot(rng);
    if (actions[0].mode == sim::Mode::kTransmit) ++tx;
  }
  // p = min(1/2, 4/16) = 0.25, the Algorithm 3 value.
  EXPECT_NEAR(tx / static_cast<double>(kSlots), 0.25, 0.01);
}

TEST(MultiRadioIntegration, DiscoversAndMatchesGroundTruth) {
  const net::Network network(
      net::make_clique(8),
      std::vector<net::ChannelSet>(8, net::ChannelSet::full(8)));
  sim::MultiRadioEngineConfig config;
  config.max_slots = 500000;
  config.seed = 3;
  const auto result = sim::run_multi_radio_engine(
      network, core::make_multi_radio_alg3(4, 8), config);
  ASSERT_TRUE(result.complete);
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    EXPECT_TRUE(result.state.table_matches_ground_truth(u));
  }
}

TEST(MultiRadioIntegration, MoreRadiosAreFaster) {
  const net::Network network(
      net::make_clique(10),
      std::vector<net::ChannelSet>(10, net::ChannelSet::full(8)));
  auto mean_slots = [&](unsigned radios) {
    util::RunningStats stats;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      sim::MultiRadioEngineConfig config;
      config.max_slots = 1'000'000;
      config.seed = seed;
      const auto result = sim::run_multi_radio_engine(
          network, core::make_multi_radio_alg3(radios, 10), config);
      EXPECT_TRUE(result.complete);
      stats.add(static_cast<double>(result.completion_slot));
    }
    return stats.mean();
  };
  const double one = mean_slots(1);
  const double four = mean_slots(4);
  EXPECT_LT(four, one / 1.5) << "R=4 should be well under R=1";
}

TEST(MultiRadioDeath, InvalidConstruction) {
  const net::ChannelSet a(4, {0});
  EXPECT_DEATH(core::MultiRadioAlg3Policy(a, 0, 4), "CHECK failed");
  EXPECT_DEATH(core::MultiRadioAlg3Policy(a, 1, 0), "CHECK failed");
  const net::ChannelSet empty(4);
  EXPECT_DEATH(core::MultiRadioAlg3Policy(empty, 1, 4), "CHECK failed");
}

TEST(MultiRadioEngineDeath, InvalidConfigAborts) {
  const net::Network network = pair_net();
  const auto factory = scripted({{{kTx0, kQuiet}}, {{kRx0, kQuiet}}});
  {
    sim::MultiRadioEngineConfig config;
    config.loss_probability = 1.0;  // would loop forever; [0,1) only
    EXPECT_DEATH(
        (void)sim::run_multi_radio_engine(network, factory, config),
        "CHECK failed");
  }
  {
    sim::MultiRadioEngineConfig config;
    config.starts = {0, 0, 0};  // 3 entries for a 2-node network
    EXPECT_DEATH(
        (void)sim::run_multi_radio_engine(network, factory, config),
        "CHECK failed");
  }
  {
    sim::MultiRadioEngineConfig config;
    config.max_slots = 0;
    EXPECT_DEATH(
        (void)sim::run_multi_radio_engine(network, factory, config),
        "CHECK failed");
  }
}

TEST(MultiRadioEngine, MessageLossDropsSomeReceptions) {
  // Node 0 transmits every slot on channel 0; node 1 always listens there.
  // Without loss every slot delivers; with q = 0.5 the delivered count
  // must land strictly between 0 and the slot count (the chance of either
  // extreme is 2^-2000).
  const net::Network network = pair_net();
  const auto factory = scripted({{{kTx0, kQuiet}}, {{kRx0, kQuiet}}});
  sim::MultiRadioEngineConfig config;
  config.max_slots = 2000;
  config.stop_when_complete = false;

  const auto reliable = sim::run_multi_radio_engine(network, factory, config);
  EXPECT_EQ(reliable.state.reception_count(), 2000u);

  config.loss_probability = 0.5;
  const auto lossy = sim::run_multi_radio_engine(network, factory, config);
  EXPECT_GT(lossy.state.reception_count(), 0u);
  EXPECT_LT(lossy.state.reception_count(), 2000u);
  EXPECT_TRUE(lossy.state.is_covered({0, 1}));
}

TEST(MultiRadioEngine, TransmitterSideInterferenceSuppresses) {
  // A jammed transmitter vacates the channel: its radio idles (counted as
  // quiet) and nothing is delivered.
  const net::Network network = pair_net();
  const auto factory = scripted({{{kTx0, kQuiet}}, {{kRx0, kQuiet}}});
  sim::MultiRadioEngineConfig config;
  config.max_slots = 5;
  config.stop_when_complete = false;
  config.interference = [](std::uint64_t, net::NodeId node, net::ChannelId) {
    return node == 0;  // PU active at the transmitter only
  };
  const auto result = sim::run_multi_radio_engine(network, factory, config);
  EXPECT_EQ(result.state.covered_links(), 0u);
  EXPECT_EQ(result.activity[0].transmit, 0u);
  EXPECT_EQ(result.activity[0].quiet, 10u);  // both radios, 5 slots
}

TEST(MultiRadioEngine, ListenerSideInterferenceDrownsChannel) {
  // PU noise at the listener: the transmitter is unaffected (its slots
  // count as transmit) but the listener hears only noise.
  const net::Network network = pair_net();
  const auto factory = scripted({{{kTx0, kQuiet}}, {{kRx0, kQuiet}}});
  sim::MultiRadioEngineConfig config;
  config.max_slots = 5;
  config.stop_when_complete = false;
  config.interference = [](std::uint64_t, net::NodeId node, net::ChannelId) {
    return node == 1;
  };
  const auto result = sim::run_multi_radio_engine(network, factory, config);
  EXPECT_EQ(result.state.covered_links(), 0u);
  EXPECT_EQ(result.activity[0].transmit, 5u);
}

TEST(MultiRadioEngine, StartScheduleGatesPollingAndActivity) {
  // Node 0 starts at slot 3: before that it is silent (no receptions at
  // node 1) and its radios are off (no activity counted).
  const net::Network network = pair_net();
  const auto factory = scripted({{{kTx0, kQuiet}}, {{kRx0, kQuiet}}});
  sim::MultiRadioEngineConfig config;
  config.max_slots = 10;
  config.stop_when_complete = false;
  config.starts = {3, 0};
  const auto result = sim::run_multi_radio_engine(network, factory, config);
  ASSERT_TRUE(result.state.is_covered({0, 1}));
  EXPECT_DOUBLE_EQ(result.state.first_coverage_time({0, 1}), 3.0);
  EXPECT_EQ(result.state.reception_count(), 7u);
  EXPECT_EQ(result.activity[0].total(), 14u);  // 7 slots x 2 radios
  EXPECT_EQ(result.activity[1].total(), 20u);
}

// Records every feedback callback with its radio index.
class ProbeMultiPolicy final : public sim::MultiRadioPolicy {
 public:
  struct Feedback {
    std::vector<std::pair<unsigned, net::NodeId>> receptions;
    std::vector<std::pair<unsigned, sim::ListenOutcome>> outcomes;
  };

  ProbeMultiPolicy(std::vector<sim::SlotAction> actions,
                   std::shared_ptr<Feedback> feedback)
      : actions_(std::move(actions)), feedback_(std::move(feedback)) {}

  std::vector<sim::SlotAction> next_slot(util::Rng&) override {
    return actions_;
  }
  unsigned radio_count() const override {
    return static_cast<unsigned>(actions_.size());
  }
  void observe_reception(unsigned radio, net::NodeId from,
                         bool first_time) override {
    (void)first_time;
    feedback_->receptions.emplace_back(radio, from);
  }
  void observe_listen_outcome(unsigned radio,
                              sim::ListenOutcome outcome) override {
    feedback_->outcomes.emplace_back(radio, outcome);
  }

 private:
  std::vector<sim::SlotAction> actions_;
  std::shared_ptr<Feedback> feedback_;
};

TEST(MultiRadioEngine, FeedbackCarriesRadioIndex) {
  // Node 1 listens on channel 0 (radio 0) and channel 1 (radio 1); node 0
  // transmits on channel 0 only. Radio 0 must report a clear reception
  // from node 0, radio 1 silence.
  const net::Network network = pair_net();
  auto feedback = std::make_shared<ProbeMultiPolicy::Feedback>();
  const auto factory = [&feedback](const net::Network&, net::NodeId u)
      -> std::unique_ptr<sim::MultiRadioPolicy> {
    if (u == 0) {
      return std::make_unique<ProbeMultiPolicy>(
          std::vector<sim::SlotAction>{kTx0, kQuiet}, feedback);
    }
    return std::make_unique<ProbeMultiPolicy>(
        std::vector<sim::SlotAction>{kRx0, kRx1}, feedback);
  };
  sim::MultiRadioEngineConfig config;
  config.max_slots = 1;
  config.stop_when_complete = false;
  const auto result = sim::run_multi_radio_engine(network, factory, config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
  ASSERT_EQ(feedback->receptions.size(), 1u);
  EXPECT_EQ(feedback->receptions[0], (std::pair<unsigned, net::NodeId>{0, 0}));
  ASSERT_EQ(feedback->outcomes.size(), 2u);
  EXPECT_EQ(feedback->outcomes[0],
            (std::pair<unsigned, sim::ListenOutcome>{
                0, sim::ListenOutcome::kClear}));
  EXPECT_EQ(feedback->outcomes[1],
            (std::pair<unsigned, sim::ListenOutcome>{
                1, sim::ListenOutcome::kSilence}));
}

TEST(MultiRadioEngine, IndexedMatchesReferenceWithManyRadios) {
  // The indexed/reference bit-identity contract must hold for R > 1 too
  // (the single-radio case is covered by the engine-parity test).
  const net::Network network(
      net::make_clique(8),
      std::vector<net::ChannelSet>(8, net::ChannelSet::full(8)));
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::MultiRadioEngineConfig config;
    config.max_slots = 3000;
    config.seed = seed;
    config.loss_probability = 0.2;
    config.starts = {0, 1, 2, 3, 4, 5, 6, 7};
    config.interference = [](std::uint64_t slot, net::NodeId node,
                             net::ChannelId c) {
      return (slot + node + c) % 5 == 0;
    };
    sim::MultiRadioEngineConfig reference = config;
    reference.indexed_reception = false;

    const auto a = sim::run_multi_radio_engine(
        network, core::make_multi_radio_alg3(3, 8), config);
    const auto b = sim::run_multi_radio_engine(
        network, core::make_multi_radio_alg3(3, 8), reference);
    EXPECT_EQ(a.complete, b.complete);
    EXPECT_EQ(a.completion_slot, b.completion_slot);
    EXPECT_EQ(a.state.reception_count(), b.state.reception_count());
    for (const net::Link link : network.links()) {
      ASSERT_EQ(a.state.is_covered(link), b.state.is_covered(link));
      if (a.state.is_covered(link)) {
        EXPECT_DOUBLE_EQ(a.state.first_coverage_time(link),
                         b.state.first_coverage_time(link));
      }
    }
  }
}

TEST(MultiRadioTrials, RunnerIsDeterministicAcrossThreadCounts) {
  const net::Network network(
      net::make_clique(6),
      std::vector<net::ChannelSet>(6, net::ChannelSet::full(6)));
  runner::MultiRadioTrialConfig config;
  config.trials = 8;
  config.seed = 7;
  config.engine.max_slots = 200000;
  config.threads = 1;
  const auto serial = runner::run_multi_radio_trials(
      network, core::make_multi_radio_alg3(2, 6), config);
  config.threads = 4;
  const auto parallel = runner::run_multi_radio_trials(
      network, core::make_multi_radio_alg3(2, 6), config);
  EXPECT_EQ(serial.completed, parallel.completed);
  ASSERT_EQ(serial.completion_slots.values().size(),
            parallel.completion_slots.values().size());
  for (std::size_t i = 0; i < serial.completion_slots.values().size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.completion_slots.values()[i],
                     parallel.completion_slots.values()[i]);
  }
}

}  // namespace
}  // namespace m2hew
