#include "core/multi_radio.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "net/topology_gen.hpp"
#include "runner/trials.hpp"
#include "sim/slot_engine.hpp"
#include "util/stats.hpp"

namespace m2hew {
namespace {

// Scripted multi-radio policy replaying fixed per-slot action vectors.
class ScriptedMultiPolicy final : public sim::MultiRadioPolicy {
 public:
  explicit ScriptedMultiPolicy(
      std::vector<std::vector<sim::SlotAction>> script)
      : script_(std::move(script)) {}
  std::vector<sim::SlotAction> next_slot(util::Rng&) override {
    const auto& step = script_[std::min(index_, script_.size() - 1)];
    ++index_;
    return step;
  }
  unsigned radio_count() const override {
    return static_cast<unsigned>(script_.front().size());
  }

 private:
  std::vector<std::vector<sim::SlotAction>> script_;
  std::size_t index_ = 0;
};

[[nodiscard]] sim::MultiRadioPolicyFactory scripted(
    std::vector<std::vector<std::vector<sim::SlotAction>>> per_node) {
  auto shared = std::make_shared<decltype(per_node)>(std::move(per_node));
  return [shared](const net::Network&, net::NodeId u)
             -> std::unique_ptr<sim::MultiRadioPolicy> {
    return std::make_unique<ScriptedMultiPolicy>((*shared)[u]);
  };
}

constexpr sim::SlotAction kTx0{sim::Mode::kTransmit, 0};
constexpr sim::SlotAction kTx1{sim::Mode::kTransmit, 1};
constexpr sim::SlotAction kRx0{sim::Mode::kReceive, 0};
constexpr sim::SlotAction kRx1{sim::Mode::kReceive, 1};
constexpr sim::SlotAction kQuiet{sim::Mode::kQuiet, net::kInvalidChannel};

[[nodiscard]] net::Network pair_net() {
  net::Topology t(2);
  t.add_edge(0, 1);
  return net::Network(std::move(t), std::vector<net::ChannelSet>(
                                        2, net::ChannelSet(2, {0, 1})));
}

TEST(MultiRadioEngine, ParallelReceptionOnTwoChannels) {
  // Node 0 transmits on both channels simultaneously; node 1 listens on
  // both: the link (0,1) is covered in slot 0 via either radio, and node
  // 1's radios do not interfere with each other.
  const net::Network network = pair_net();
  sim::MultiRadioEngineConfig config;
  config.max_slots = 1;
  config.stop_when_complete = false;
  const auto result = sim::run_multi_radio_engine(
      network, scripted({{{kTx0, kTx1}}, {{kRx0, kRx1}}}), config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
}

TEST(MultiRadioEngine, SimultaneousBidirectionalDiscovery) {
  // Full duplex across radios: each node transmits on one channel and
  // listens on the other — both directions covered in a single slot,
  // impossible with one transceiver.
  const net::Network network = pair_net();
  sim::MultiRadioEngineConfig config;
  config.max_slots = 1;
  config.stop_when_complete = false;
  const auto result = sim::run_multi_radio_engine(
      network, scripted({{{kTx0, kRx1}}, {{kRx0, kTx1}}}), config);
  EXPECT_TRUE(result.state.is_covered({0, 1}));
  EXPECT_TRUE(result.state.is_covered({1, 0}));
  EXPECT_TRUE(result.complete);
}

TEST(MultiRadioEngine, CollisionsAcrossSendersStillHappen) {
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(2, {0, 1})));
  sim::MultiRadioEngineConfig config;
  config.max_slots = 1;
  config.stop_when_complete = false;
  // Both neighbors transmit on channel 0 while the hub listens there.
  const auto result = sim::run_multi_radio_engine(
      network,
      scripted({{{kRx0, kQuiet}}, {{kTx0, kQuiet}}, {{kTx0, kQuiet}}}),
      config);
  EXPECT_EQ(result.state.covered_links(), 0u);
}

TEST(MultiRadioEngineDeath, DuplicateChannelAcrossRadiosAborts) {
  const net::Network network = pair_net();
  sim::MultiRadioEngineConfig config;
  config.max_slots = 1;
  EXPECT_DEATH(
      (void)sim::run_multi_radio_engine(
          network, scripted({{{kTx0, kRx0}}, {{kRx1, kQuiet}}}), config),
      "CHECK failed");
}

TEST(MultiRadioAlg3Policy, StripesPartitionTheChannelSet) {
  const net::ChannelSet a(8, {0, 1, 2, 3, 4, 5, 6, 7});
  core::MultiRadioAlg3Policy policy(a, 3, 8);
  std::size_t total = 0;
  for (unsigned r = 0; r < 3; ++r) {
    for (const net::ChannelId c : policy.stripe(r)) {
      EXPECT_EQ(c % 3, r);
      ++total;
    }
  }
  EXPECT_EQ(total, 8u);
}

TEST(MultiRadioAlg3Policy, EmptyStripeStaysQuiet) {
  const net::ChannelSet a(8, {0, 2, 4});  // all even: stripe 1 of 2 empty
  core::MultiRadioAlg3Policy policy(a, 2, 4);
  EXPECT_TRUE(policy.stripe(1).empty());
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto actions = policy.next_slot(rng);
    ASSERT_EQ(actions.size(), 2u);
    EXPECT_EQ(actions[1].mode, sim::Mode::kQuiet);
    EXPECT_NE(actions[0].mode, sim::Mode::kQuiet);
    EXPECT_EQ(actions[0].channel % 2, 0u);
  }
}

TEST(MultiRadioAlg3Policy, SingleRadioEqualsAlgorithm3Distribution) {
  const net::ChannelSet a(4, {0, 1, 2, 3});
  core::MultiRadioAlg3Policy policy(a, 1, 16);
  util::Rng rng(2);
  int tx = 0;
  constexpr int kSlots = 40000;
  for (int i = 0; i < kSlots; ++i) {
    const auto actions = policy.next_slot(rng);
    if (actions[0].mode == sim::Mode::kTransmit) ++tx;
  }
  // p = min(1/2, 4/16) = 0.25, the Algorithm 3 value.
  EXPECT_NEAR(tx / static_cast<double>(kSlots), 0.25, 0.01);
}

TEST(MultiRadioIntegration, DiscoversAndMatchesGroundTruth) {
  const net::Network network(
      net::make_clique(8),
      std::vector<net::ChannelSet>(8, net::ChannelSet::full(8)));
  sim::MultiRadioEngineConfig config;
  config.max_slots = 500000;
  config.seed = 3;
  const auto result = sim::run_multi_radio_engine(
      network, core::make_multi_radio_alg3(4, 8), config);
  ASSERT_TRUE(result.complete);
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    EXPECT_TRUE(result.state.table_matches_ground_truth(u));
  }
}

TEST(MultiRadioIntegration, MoreRadiosAreFaster) {
  const net::Network network(
      net::make_clique(10),
      std::vector<net::ChannelSet>(10, net::ChannelSet::full(8)));
  auto mean_slots = [&](unsigned radios) {
    util::RunningStats stats;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      sim::MultiRadioEngineConfig config;
      config.max_slots = 1'000'000;
      config.seed = seed;
      const auto result = sim::run_multi_radio_engine(
          network, core::make_multi_radio_alg3(radios, 10), config);
      EXPECT_TRUE(result.complete);
      stats.add(static_cast<double>(result.completion_slot));
    }
    return stats.mean();
  };
  const double one = mean_slots(1);
  const double four = mean_slots(4);
  EXPECT_LT(four, one / 1.5) << "R=4 should be well under R=1";
}

TEST(MultiRadioDeath, InvalidConstruction) {
  const net::ChannelSet a(4, {0});
  EXPECT_DEATH(core::MultiRadioAlg3Policy(a, 0, 4), "CHECK failed");
  EXPECT_DEATH(core::MultiRadioAlg3Policy(a, 1, 0), "CHECK failed");
  const net::ChannelSet empty(4);
  EXPECT_DEATH(core::MultiRadioAlg3Policy(empty, 1, 4), "CHECK failed");
}

}  // namespace
}  // namespace m2hew
