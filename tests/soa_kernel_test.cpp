// Bit-exactness suite for the SoA slot kernel against its oracle, the
// classic slot engine running the virtual policies.
//
// The kernel's contract (sim/soa_kernel.hpp) is exact identity — same
// completion flag and slot, same per-node activity counters, same per-link
// coverage and first-coverage slots, same robustness report — for ANY
// topology, channel assignment, spec-representable policy, loss rate,
// interference schedule, start pattern, fault plan and seed. The sweep
// below randomizes all of those, exactly as engine_equivalence_test pins
// the indexed reception path to the reference scan.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/policy_spec.hpp"
#include "net/channel_assign.hpp"
#include "net/mobility.hpp"
#include "net/propagation.hpp"
#include "net/topology_gen.hpp"
#include "net/topology_provider.hpp"
#include "runner/trials.hpp"
#include "sim/fault_plan.hpp"
#include "sim/slot_engine.hpp"
#include "sim/soa_kernel.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

// Soak runs (ci.yml) export M2HEW_SOAK_SEED to shift every scenario seed,
// widening property coverage across scheduled runs without code changes.
[[nodiscard]] std::uint64_t soak_offset() {
  const char* env = std::getenv("M2HEW_SOAK_SEED");
  return env == nullptr ? 0 : std::strtoull(env, nullptr, 10);
}

// Deterministic pseudo-random interference field: active ~20% of the time,
// decorrelated across (slot, node, channel).
[[nodiscard]] bool pseudo_pu(std::uint64_t slot, net::NodeId node,
                             net::ChannelId channel) {
  std::uint64_t h = (slot + 1) * 0x9E3779B97F4A7C15ull;
  h ^= (static_cast<std::uint64_t>(node) + 1) * 0xBF58476D1CE4E5B9ull;
  h ^= (static_cast<std::uint64_t>(channel) + 1) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h % 5 == 0;
}

// A different topology family per seed residue, so the sweep covers CSR
// shapes from near-regular (grid) through heavy-tailed (Barabási-Albert).
[[nodiscard]] net::Topology random_topology(std::uint64_t seed, net::NodeId n,
                                            util::Rng& rng) {
  switch (seed % 5) {
    case 0:
      return net::make_erdos_renyi(n, 0.4, rng);
    case 1:
      return net::make_erdos_renyi_sparse(n, 0.25, rng);
    case 2:
      return net::make_unit_disk_bucketed(n, 3.0, 1.2, rng).topology;
    case 3:
      return net::make_grid(4, n / 4);
    default:
      return net::make_barabasi_albert(n, 3, rng);
  }
}

[[nodiscard]] net::Network random_network(std::uint64_t seed, net::NodeId n,
                                          util::Rng& rng) {
  net::Topology topology = random_topology(seed, n, rng);
  if (seed % 2 == 0) topology = net::make_asymmetric(topology, 0.3, rng);
  const net::ChannelId universe = (seed % 3 == 0) ? 7 : 6;
  auto assignment =
      (seed % 3 == 0)
          ? net::variable_size_random_assignment(n, universe, 2, 5, rng)
          : net::uniform_random_assignment(n, universe, 3, rng);
  if (seed % 4 == 1) {
    return net::Network(std::move(topology), std::move(assignment),
                        net::random_propagation_filter(universe, 0.7, seed));
  }
  return net::Network(std::move(topology), std::move(assignment));
}

// Randomized fault plan mixing churn, burst loss and scheduled spectrum
// faults by seed bits (same recipe as the engine equivalence sweep).
[[nodiscard]] sim::FaultPlan<std::uint64_t> make_fault_plan(
    std::uint64_t seed, net::NodeId n, double horizon) {
  sim::FaultPlan<std::uint64_t> plan;
  util::Rng rng(seed ^ 0xFA157);
  if (seed % 2 == 0) {
    plan.churn.crash_probability = 0.3 + 0.2 * static_cast<double>(seed % 3);
    plan.churn.earliest_crash = static_cast<std::uint64_t>(horizon * 0.05);
    plan.churn.latest_crash = static_cast<std::uint64_t>(horizon * 0.5);
    plan.churn.min_down = static_cast<std::uint64_t>(horizon * 0.05);
    plan.churn.max_down = static_cast<std::uint64_t>(horizon * 0.3);
    plan.churn.reset_policy_on_recovery = (seed % 4) == 0;
  }
  if (seed % 3 == 0) {
    plan.burst_loss.enabled = true;
    plan.burst_loss.p_good_to_bad = 0.05;
    plan.burst_loss.p_bad_to_good = 0.2;
    plan.burst_loss.loss_good = 0.02;
    plan.burst_loss.loss_bad = 0.8;
  }
  if (seed % 5 == 0) {
    for (net::NodeId u = 0; u < n; ++u) {
      plan.positions.push_back({rng.uniform_double(), rng.uniform_double()});
    }
    for (int i = 0; i < 4; ++i) {
      net::ScheduledPrimaryUser pu;
      pu.user.position = {rng.uniform_double(), rng.uniform_double()};
      pu.user.radius = 0.3 + 0.3 * rng.uniform_double();
      pu.user.channel = static_cast<net::ChannelId>(rng.uniform(6));
      pu.on_from = horizon * 0.6 * rng.uniform_double();
      pu.on_until = pu.on_from + horizon * 0.3 * rng.uniform_double();
      plan.spectrum.push_back(pu);
    }
  }
  if (seed % 2 == 1) {
    plan.adversary.fraction = 0.2 + 0.2 * static_cast<double>(seed % 3);
    plan.adversary.attack = static_cast<sim::AdversaryAttack>(seed % 4);
    plan.adversary.byzantine_tx = 0.6;
    plan.adversary.victim_fraction = 0.5;
  }
  return plan;
}

[[nodiscard]] core::SyncPolicySpec spec_for(std::uint64_t seed) {
  switch (seed % 4) {
    case 0:
      return core::SyncPolicySpec::algorithm1(16);
    case 1:
      return core::SyncPolicySpec::algorithm2();
    case 2:
      return core::SyncPolicySpec::algorithm2(core::EstimateSchedule::kDouble);
    default:
      return core::SyncPolicySpec::algorithm3(8);
  }
}

[[nodiscard]] sim::SlotEngineConfig random_config(std::uint64_t seed,
                                                  net::NodeId n,
                                                  util::Rng& rng) {
  sim::SlotEngineConfig config;
  config.max_slots = 400;
  config.seed = seed;
  config.stop_when_complete = (seed % 2) != 0;
  config.loss_probability = (seed % 3 == 1) ? 0.25 : 0.0;
  if (seed % 2 == 0) {
    config.interference = [](std::uint64_t slot, net::NodeId node,
                             net::ChannelId c) {
      return pseudo_pu(slot, node, c);
    };
  }
  config.starts.assign(n, 0);
  for (auto& s : config.starts) s = rng.uniform(25);
  config.faults = make_fault_plan(seed, n, 400.0);
  if (config.faults.burst_loss.enabled) config.loss_probability = 0.0;
  return config;
}

void expect_same_robustness(const sim::RobustnessReport& a,
                            const sim::RobustnessReport& b) {
  EXPECT_EQ(a.enabled, b.enabled);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
  EXPECT_EQ(a.down_at_end, b.down_at_end);
  EXPECT_EQ(a.surviving_links, b.surviving_links);
  EXPECT_EQ(a.covered_surviving_links, b.covered_surviving_links);
  EXPECT_EQ(a.ghost_entries, b.ghost_entries);
  EXPECT_EQ(a.recovered_links, b.recovered_links);
  EXPECT_EQ(a.rediscovered_links, b.rediscovered_links);
  EXPECT_DOUBLE_EQ(a.mean_rediscovery, b.mean_rediscovery);
  EXPECT_DOUBLE_EQ(a.max_rediscovery, b.max_rediscovery);
  EXPECT_EQ(a.adversary, b.adversary);
  EXPECT_EQ(a.adversary_nodes, b.adversary_nodes);
  EXPECT_EQ(a.real_entries, b.real_entries);
  EXPECT_EQ(a.fake_entries, b.fake_entries);
  EXPECT_EQ(a.isolated_fakes, b.isolated_fakes);
  EXPECT_EQ(a.honest_isolated, b.honest_isolated);
  EXPECT_DOUBLE_EQ(a.mean_isolation, b.mean_isolation);
  EXPECT_DOUBLE_EQ(a.max_isolation, b.max_isolation);
}

class SoaKernelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoaKernelEquivalence, MatchesSlotEngineBitExactly) {
  const std::uint64_t seed = GetParam() + soak_offset();
  util::Rng rng(seed ^ 0x50A);
  const auto n = static_cast<net::NodeId>(12 + 4 * (seed % 4));
  const net::Network network = random_network(seed, n, rng);
  const core::SyncPolicySpec spec = spec_for(seed);
  const sim::SlotEngineConfig config = random_config(seed, n, rng);

  const auto engine =
      sim::run_slot_engine(network, core::make_policy_factory(spec), config);
  const auto soa = sim::run_soa_slot_kernel(
      network, core::build_soa_policy_table(network, spec), config);

  EXPECT_EQ(engine.complete, soa.complete);
  EXPECT_EQ(engine.completion_slot, soa.completion_slot);
  EXPECT_EQ(engine.slots_executed, soa.slots_executed);

  ASSERT_EQ(engine.activity.size(), soa.activity.size());
  for (std::size_t u = 0; u < engine.activity.size(); ++u) {
    EXPECT_EQ(engine.activity[u].transmit, soa.activity[u].transmit)
        << "node " << u;
    EXPECT_EQ(engine.activity[u].receive, soa.activity[u].receive)
        << "node " << u;
    EXPECT_EQ(engine.activity[u].quiet, soa.activity[u].quiet) << "node " << u;
  }

  EXPECT_EQ(engine.state.covered_links(),
            static_cast<std::size_t>(soa.covered_links));
  EXPECT_EQ(engine.state.reception_count(),
            static_cast<std::size_t>(soa.receptions));
  EXPECT_EQ(network.links().size(),
            static_cast<std::size_t>(soa.total_links));
  for (const net::Link link : network.links()) {
    ASSERT_EQ(engine.state.is_covered(link), soa.is_covered(link))
        << "link " << link.from << "->" << link.to;
    if (engine.state.is_covered(link)) {
      EXPECT_DOUBLE_EQ(engine.state.first_coverage_time(link),
                       soa.first_coverage_slot(link))
          << "link " << link.from << "->" << link.to;
    }
  }

  expect_same_robustness(engine.robustness, soa.robustness);
}

// The dynamic-topology leg: under a moving epoch schedule the kernel
// filters its immutable union CSR through the per-epoch active-arc mask;
// the oracle swaps whole adjacency views. Identity must survive the
// filter — same candidate order, same RNG draws, same receptions.
TEST_P(SoaKernelEquivalence, MatchesSlotEngineUnderEpochSchedule) {
  const std::uint64_t seed = GetParam() + soak_offset();
  util::Rng rng(seed ^ 0x50B);
  const auto n = static_cast<net::NodeId>(12 + 4 * (seed % 4));

  net::MobilityConfig mobility;
  mobility.nodes = n;
  mobility.side = 1.0;
  mobility.radius = 0.45;
  mobility.speed_min = 0.02;
  mobility.speed_max = 0.05 + 0.05 * static_cast<double>(seed % 3);
  mobility.pause_epochs = seed % 2;
  mobility.epochs = 3 + seed % 3;
  const auto assignment =
      (seed % 3 == 0)
          ? net::variable_size_random_assignment(n, 7, 2, 5, rng)
          : net::uniform_random_assignment(n, 6, 3, rng);
  const net::EpochTopologyProvider provider(mobility, assignment, seed);
  const net::Network& network = provider.union_network();

  const core::SyncPolicySpec spec = spec_for(seed);
  sim::SlotEngineConfig config = random_config(seed, n, rng);
  config.topology = &provider;
  config.epoch_length = 50 + 25 * (seed % 3);

  const auto engine =
      sim::run_slot_engine(network, core::make_policy_factory(spec), config);
  const auto soa = sim::run_soa_slot_kernel(
      network, core::build_soa_policy_table(network, spec), config);

  EXPECT_EQ(engine.complete, soa.complete);
  EXPECT_EQ(engine.completion_slot, soa.completion_slot);
  EXPECT_EQ(engine.slots_executed, soa.slots_executed);

  ASSERT_EQ(engine.activity.size(), soa.activity.size());
  for (std::size_t u = 0; u < engine.activity.size(); ++u) {
    EXPECT_EQ(engine.activity[u].transmit, soa.activity[u].transmit)
        << "node " << u;
    EXPECT_EQ(engine.activity[u].receive, soa.activity[u].receive)
        << "node " << u;
    EXPECT_EQ(engine.activity[u].quiet, soa.activity[u].quiet) << "node " << u;
  }

  EXPECT_EQ(engine.state.covered_links(),
            static_cast<std::size_t>(soa.covered_links));
  EXPECT_EQ(engine.state.reception_count(),
            static_cast<std::size_t>(soa.receptions));
  for (const net::Link link : network.links()) {
    ASSERT_EQ(engine.state.is_covered(link), soa.is_covered(link))
        << "link " << link.from << "->" << link.to;
    if (engine.state.is_covered(link)) {
      EXPECT_DOUBLE_EQ(engine.state.first_coverage_time(link),
                       soa.first_coverage_slot(link))
          << "link " << link.from << "->" << link.to;
    }
  }

  expect_same_robustness(engine.robustness, soa.robustness);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SoaKernelEquivalence,
                         ::testing::Range<std::uint64_t>(1, 33));

// One kernel object must be reusable across trials (the per-trial arena):
// running the same config twice on one instance is bit-identical.
TEST(SoaKernel, ReusedInstanceIsDeterministic) {
  util::Rng rng(7);
  const net::Network network = random_network(9, 16, rng);
  const core::SyncPolicySpec spec = core::SyncPolicySpec::algorithm2();
  const sim::SoaPolicyTable table =
      core::build_soa_policy_table(network, spec);
  sim::SlotEngineConfig config;
  config.max_slots = 300;
  config.seed = 42;
  config.loss_probability = 0.2;

  sim::SoaSlotKernel kernel(network);
  const auto first = kernel.run(table, config);
  const auto second = kernel.run(table, config);
  EXPECT_EQ(first.complete, second.complete);
  EXPECT_EQ(first.completion_slot, second.completion_slot);
  EXPECT_EQ(first.receptions, second.receptions);
  EXPECT_EQ(first.covered, second.covered);
  EXPECT_EQ(first.first_slot, second.first_slot);
}

void expect_same_stats(const runner::SyncTrialStats& a,
                       const runner::SyncTrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.completed, b.completed);
  const auto sa = a.completion_slots.summarize();
  const auto sb = b.completion_slots.summarize();
  EXPECT_DOUBLE_EQ(sa.mean, sb.mean);
  EXPECT_DOUBLE_EQ(sa.p50, sb.p50);
  EXPECT_DOUBLE_EQ(sa.p95, sb.p95);
  EXPECT_DOUBLE_EQ(sa.max, sb.max);
  EXPECT_EQ(a.robustness.fault_trials, b.robustness.fault_trials);
  EXPECT_EQ(a.robustness.recovered_links, b.robustness.recovered_links);
  EXPECT_EQ(a.robustness.rediscovered_links, b.robustness.rediscovered_links);
}

// The runner's kernel switch: the spec overload must aggregate identically
// under --kernel=engine and --kernel=soa, and — like every trial runner —
// identically at any worker count.
TEST(SoaKernelTrials, EngineAndSoaAggregatesMatch) {
  util::Rng rng(11);
  const net::Network network = random_network(10, 14, rng);

  runner::SyncTrialConfig config;
  config.trials = 12;
  config.seed = 5;
  config.threads = 1;
  config.engine.max_slots = 400;
  config.engine.faults = make_fault_plan(10, 14, 400.0);
  config.engine.loss_probability =
      config.engine.faults.burst_loss.enabled ? 0.0 : 0.1;
  const core::SyncPolicySpec spec = core::SyncPolicySpec::algorithm1(12);

  config.kernel = runner::SyncKernel::kEngine;
  const auto engine_stats = runner::run_sync_trials(network, spec, config);
  config.kernel = runner::SyncKernel::kSoa;
  const auto soa_stats = runner::run_sync_trials(network, spec, config);
  expect_same_stats(engine_stats, soa_stats);
}

TEST(SoaKernelTrials, SerialMatchesParallelUnderSoa) {
  util::Rng rng(13);
  const net::Network network = random_network(12, 16, rng);

  runner::SyncTrialConfig config;
  config.trials = 16;
  config.seed = 9;
  config.engine.max_slots = 500;
  config.engine.faults = make_fault_plan(12, 16, 500.0);
  config.engine.loss_probability =
      config.engine.faults.burst_loss.enabled ? 0.0 : 0.15;
  config.kernel = runner::SyncKernel::kSoa;
  config.per_trial = [](std::size_t t, sim::SlotEngineConfig& engine) {
    engine.starts.assign(16, 0);
    for (std::size_t u = 0; u < engine.starts.size(); ++u) {
      engine.starts[u] = (t * 7 + u * 3) % 20;
    }
  };

  config.threads = 1;
  const auto serial = runner::run_sync_trials(network, spec_for(4), config);
  config.threads = 4;
  const auto parallel = runner::run_sync_trials(network, spec_for(4), config);
  expect_same_stats(serial, parallel);
}

}  // namespace
}  // namespace m2hew
