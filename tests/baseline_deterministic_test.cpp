#include "core/baseline_deterministic.hpp"

#include <gtest/gtest.h>

#include "net/channel_assign.hpp"
#include "net/topology_gen.hpp"
#include "sim/slot_engine.hpp"
#include "util/rng.hpp"

namespace m2hew::core {
namespace {

TEST(DeterministicBaseline, ScheduleIsDeterministic) {
  const net::ChannelSet a = net::ChannelSet::full(2);
  DeterministicBaselinePolicy policy(a, /*id=*/1, /*id_bound=*/3,
                                     /*universe=*/2);
  util::Rng rng(1);
  // Round structure with id_bound=3, |U|=2:
  // slots 0,1,2 on channel 0 (turns 0,1,2), slots 3,4,5 on channel 1.
  const sim::Mode expected_modes[] = {
      sim::Mode::kReceive, sim::Mode::kTransmit, sim::Mode::kReceive,
      sim::Mode::kReceive, sim::Mode::kTransmit, sim::Mode::kReceive};
  const net::ChannelId expected_channels[] = {0, 0, 0, 1, 1, 1};
  for (int slot = 0; slot < 6; ++slot) {
    const auto action = policy.next_slot(rng);
    EXPECT_EQ(action.mode, expected_modes[slot]) << "slot " << slot;
    EXPECT_EQ(action.channel, expected_channels[slot]) << "slot " << slot;
  }
  EXPECT_EQ(policy.sweep_length(), 6u);
}

TEST(DeterministicBaseline, QuietOnUnavailableChannels) {
  const net::ChannelSet a(3, {0, 2});  // channel 1 unavailable
  DeterministicBaselinePolicy policy(a, 0, 2, 3);
  util::Rng rng(1);
  for (std::uint64_t slot = 0; slot < 6; ++slot) {
    const auto action = policy.next_slot(rng);
    const auto channel = static_cast<net::ChannelId>((slot / 2) % 3);
    if (channel == 1) {
      EXPECT_EQ(action.mode, sim::Mode::kQuiet);
    } else {
      EXPECT_NE(action.mode, sim::Mode::kQuiet);
    }
  }
}

TEST(DeterministicBaseline, CompletesWithinOneSweepDeterministically) {
  util::Rng rng(2);
  const net::Network network(
      net::make_clique(6),
      net::uniform_random_assignment(6, 5, 3, rng));
  sim::SlotEngineConfig config;
  config.max_slots = 6ull * 5ull;  // exactly one sweep: N x |U|
  config.seed = 3;
  const auto result = sim::run_slot_engine(
      network, make_deterministic_baseline(5), config);
  ASSERT_TRUE(result.complete);
  for (net::NodeId u = 0; u < 6; ++u) {
    EXPECT_TRUE(result.state.table_matches_ground_truth(u));
  }
  // Re-running with any other seed gives the identical completion slot —
  // there is no randomness in the schedule.
  sim::SlotEngineConfig config2 = config;
  config2.seed = 999;
  const auto result2 = sim::run_slot_engine(
      network, make_deterministic_baseline(5), config2);
  EXPECT_EQ(result.completion_slot, result2.completion_slot);
}

TEST(DeterministicBaseline, NeverCollides) {
  // At most one node transmits per slot by construction, so reception
  // counts equal link-coverage opportunities: run with an observer and
  // assert no slot ever saw a collision by checking every listening node
  // on the turn-holder's channel heard it (clique, shared channels).
  const net::Network network(
      net::make_clique(4),
      std::vector<net::ChannelSet>(4, net::ChannelSet::full(2)));
  sim::SlotEngineConfig config;
  config.max_slots = 8;  // one sweep
  config.stop_when_complete = false;
  std::size_t receptions = 0;
  config.on_reception = [&receptions](std::uint64_t, net::NodeId,
                                      net::NodeId, net::ChannelId) {
    ++receptions;
  };
  (void)sim::run_slot_engine(network, make_deterministic_baseline(2),
                             config);
  // Every slot: 1 transmitter, 3 listeners on the same channel -> 3
  // receptions x 8 slots.
  EXPECT_EQ(receptions, 24u);
}

TEST(DeterministicBaselineDeath, BadIdsAbort) {
  const net::ChannelSet a = net::ChannelSet::full(2);
  EXPECT_DEATH(DeterministicBaselinePolicy(a, 3, 3, 2), "CHECK failed");
  EXPECT_DEATH(DeterministicBaselinePolicy(a, 0, 0, 2), "CHECK failed");
  EXPECT_DEATH(DeterministicBaselinePolicy(a, 0, 1, 0), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::core
