#include "runner/scenario_kv.hpp"

#include <gtest/gtest.h>

namespace m2hew::runner {
namespace {

TEST(ScenarioKv, TopologyNames) {
  ScenarioConfig config;
  EXPECT_TRUE(apply_scenario_setting(config, "topology", "unit-disk"));
  EXPECT_EQ(config.topology, TopologyKind::kUnitDisk);
  EXPECT_TRUE(apply_scenario_setting(config, "topology", "barabasi-albert"));
  EXPECT_EQ(config.topology, TopologyKind::kBarabasiAlbert);
}

TEST(ScenarioKv, NumericFields) {
  ScenarioConfig config;
  EXPECT_TRUE(apply_scenario_setting(config, "n", "42"));
  EXPECT_EQ(config.n, 42u);
  EXPECT_TRUE(apply_scenario_setting(config, "er-p", "0.35"));
  EXPECT_DOUBLE_EQ(config.er_edge_probability, 0.35);
  EXPECT_TRUE(apply_scenario_setting(config, "set-size", "6"));
  EXPECT_EQ(config.set_size, 6u);
  EXPECT_TRUE(apply_scenario_setting(config, "overlap", "3"));
  EXPECT_EQ(config.chain_overlap, 3u);
  EXPECT_TRUE(apply_scenario_setting(config, "asymmetric-drop", "0.5"));
  EXPECT_DOUBLE_EQ(config.asymmetric_drop, 0.5);
}

TEST(ScenarioKv, ChannelAndPropagationKinds) {
  ScenarioConfig config;
  EXPECT_TRUE(apply_scenario_setting(config, "channels", "chain"));
  EXPECT_EQ(config.channels, ChannelKind::kChainOverlap);
  EXPECT_TRUE(apply_scenario_setting(config, "propagation", "lowpass"));
  EXPECT_EQ(config.propagation, PropagationKind::kLowpass);
  EXPECT_TRUE(apply_scenario_setting(config, "prop-keep", "0.6"));
  EXPECT_DOUBLE_EQ(config.prop_keep, 0.6);
}

TEST(ScenarioKv, BooleanField) {
  ScenarioConfig config;
  EXPECT_TRUE(
      apply_scenario_setting(config, "require-nonempty-spans", "false"));
  EXPECT_FALSE(config.require_nonempty_spans);
  EXPECT_TRUE(
      apply_scenario_setting(config, "require-nonempty-spans", "1"));
  EXPECT_TRUE(config.require_nonempty_spans);
}

TEST(ScenarioKv, UnknownKeyReturnsFalseUntouched) {
  ScenarioConfig config;
  const ScenarioConfig before = config;
  EXPECT_FALSE(apply_scenario_setting(config, "bogus-key", "1"));
  EXPECT_EQ(config.n, before.n);
}

TEST(ScenarioKv, AppliedConfigBuilds) {
  ScenarioConfig config;
  ASSERT_TRUE(apply_scenario_setting(config, "topology", "line"));
  ASSERT_TRUE(apply_scenario_setting(config, "channels", "chain"));
  ASSERT_TRUE(apply_scenario_setting(config, "n", "6"));
  ASSERT_TRUE(apply_scenario_setting(config, "set-size", "4"));
  ASSERT_TRUE(apply_scenario_setting(config, "overlap", "2"));
  const net::Network network = build_scenario(config, 1);
  EXPECT_EQ(network.node_count(), 6u);
  EXPECT_DOUBLE_EQ(network.min_span_ratio(), 0.5);
}

TEST(ScenarioKvDeath, BadValuesAbort) {
  ScenarioConfig config;
  EXPECT_DEATH((void)apply_scenario_setting(config, "topology", "moebius"),
               "CHECK failed");
  EXPECT_DEATH((void)apply_scenario_setting(config, "n", "many"),
               "CHECK failed");
  EXPECT_DEATH((void)apply_scenario_setting(config, "er-p", "x"),
               "CHECK failed");
  EXPECT_DEATH((void)apply_scenario_setting(config, "channels", "psychic"),
               "CHECK failed");
}

}  // namespace
}  // namespace m2hew::runner
