#include "runner/scenario_kv.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/trust.hpp"
#include "sim/fault_plan.hpp"
#include "util/ini.hpp"

namespace m2hew::runner {
namespace {

TEST(ScenarioKv, TopologyNames) {
  ScenarioConfig config;
  EXPECT_TRUE(apply_scenario_setting(config, "topology", "unit-disk"));
  EXPECT_EQ(config.topology, TopologyKind::kUnitDisk);
  EXPECT_TRUE(apply_scenario_setting(config, "topology", "barabasi-albert"));
  EXPECT_EQ(config.topology, TopologyKind::kBarabasiAlbert);
}

TEST(ScenarioKv, NumericFields) {
  ScenarioConfig config;
  EXPECT_TRUE(apply_scenario_setting(config, "n", "42"));
  EXPECT_EQ(config.n, 42u);
  EXPECT_TRUE(apply_scenario_setting(config, "er-p", "0.35"));
  EXPECT_DOUBLE_EQ(config.er_edge_probability, 0.35);
  EXPECT_TRUE(apply_scenario_setting(config, "set-size", "6"));
  EXPECT_EQ(config.set_size, 6u);
  EXPECT_TRUE(apply_scenario_setting(config, "overlap", "3"));
  EXPECT_EQ(config.chain_overlap, 3u);
  EXPECT_TRUE(apply_scenario_setting(config, "asymmetric-drop", "0.5"));
  EXPECT_DOUBLE_EQ(config.asymmetric_drop, 0.5);
}

TEST(ScenarioKv, ChannelAndPropagationKinds) {
  ScenarioConfig config;
  EXPECT_TRUE(apply_scenario_setting(config, "channels", "chain"));
  EXPECT_EQ(config.channels, ChannelKind::kChainOverlap);
  EXPECT_TRUE(apply_scenario_setting(config, "propagation", "lowpass"));
  EXPECT_EQ(config.propagation, PropagationKind::kLowpass);
  EXPECT_TRUE(apply_scenario_setting(config, "prop-keep", "0.6"));
  EXPECT_DOUBLE_EQ(config.prop_keep, 0.6);
}

TEST(ScenarioKv, BooleanField) {
  ScenarioConfig config;
  EXPECT_TRUE(
      apply_scenario_setting(config, "require-nonempty-spans", "false"));
  EXPECT_FALSE(config.require_nonempty_spans);
  EXPECT_TRUE(
      apply_scenario_setting(config, "require-nonempty-spans", "1"));
  EXPECT_TRUE(config.require_nonempty_spans);
}

TEST(ScenarioKv, UnknownKeyReturnsFalseUntouched) {
  ScenarioConfig config;
  const ScenarioConfig before = config;
  EXPECT_FALSE(apply_scenario_setting(config, "bogus-key", "1"));
  EXPECT_EQ(config.n, before.n);
}

TEST(ScenarioKv, AppliedConfigBuilds) {
  ScenarioConfig config;
  ASSERT_TRUE(apply_scenario_setting(config, "topology", "line"));
  ASSERT_TRUE(apply_scenario_setting(config, "channels", "chain"));
  ASSERT_TRUE(apply_scenario_setting(config, "n", "6"));
  ASSERT_TRUE(apply_scenario_setting(config, "set-size", "4"));
  ASSERT_TRUE(apply_scenario_setting(config, "overlap", "2"));
  const net::Network network = build_scenario(config, 1);
  EXPECT_EQ(network.node_count(), 6u);
  EXPECT_DOUBLE_EQ(network.min_span_ratio(), 0.5);
}

// Parses `text` with parse_adversary_section and returns the diagnostic
// ("" on success). Every failure must be recoverable — a daemon-submitted
// spec must never reach the aborting CHECKs in the validators.
[[nodiscard]] std::string adversary_error_of(const std::string& text) {
  const util::IniFile ini = util::IniFile::parse_string(text);
  sim::AdversarySpec adversary;
  core::TrustConfig trust;
  std::string error;
  const bool ok = parse_adversary_section(ini, adversary, trust, &error);
  EXPECT_EQ(ok, error.empty());
  return error;
}

TEST(ScenarioKv, AdversarySectionParses) {
  const util::IniFile ini = util::IniFile::parse_string(
      "[adversary]\n"
      "fraction = 0.3\n"
      "attack = non-responder\n"
      "byzantine-tx = 0.7\n"
      "victim-fraction = 0.25\n"
      "trust = 1\n"
      "trust-threshold = 0.4\n"
      "trust-rate-window = 64\n");
  sim::AdversarySpec adversary;
  core::TrustConfig trust;
  std::string error;
  ASSERT_TRUE(parse_adversary_section(ini, adversary, trust, &error)) << error;
  EXPECT_DOUBLE_EQ(adversary.fraction, 0.3);
  EXPECT_EQ(adversary.attack, sim::AdversaryAttack::kNonResponder);
  EXPECT_DOUBLE_EQ(adversary.byzantine_tx, 0.7);
  EXPECT_DOUBLE_EQ(adversary.victim_fraction, 0.25);
  EXPECT_TRUE(trust.enabled);
  EXPECT_DOUBLE_EQ(trust.threshold, 0.4);
  EXPECT_EQ(trust.rate_window, 64u);
}

TEST(ScenarioKv, AdversarySectionAbsentLeavesDefaults) {
  const util::IniFile ini = util::IniFile::parse_string("[scenario]\nn = 4\n");
  sim::AdversarySpec adversary;
  core::TrustConfig trust;
  std::string error;
  ASSERT_TRUE(parse_adversary_section(ini, adversary, trust, &error));
  EXPECT_FALSE(adversary.enabled());
  EXPECT_FALSE(trust.enabled);
  EXPECT_EQ(error, "");
}

TEST(ScenarioKv, AdversarySectionRecoverableDiagnostics) {
  // Unknown key: diagnostic names the section and the key.
  const std::string unknown = adversary_error_of("[adversary]\nbanana = 1\n");
  EXPECT_NE(unknown.find("[adversary]"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("banana"), std::string::npos) << unknown;
  // Malformed value: diagnostic echoes the offending text.
  const std::string malformed =
      adversary_error_of("[adversary]\nfraction = lots\n");
  EXPECT_NE(malformed.find("lots"), std::string::npos) << malformed;
  // Out-of-range values mirror the aborting validators, recoverably.
  EXPECT_NE(adversary_error_of("[adversary]\nfraction = 1.5\n"), "");
  EXPECT_NE(adversary_error_of("[adversary]\nattack = meteor\n"), "");
  EXPECT_NE(adversary_error_of("[adversary]\ntrust-decay = 1.5\n"), "");
  EXPECT_NE(adversary_error_of("[adversary]\ntrust-threshold = 1\n"), "");
  EXPECT_NE(adversary_error_of("[adversary]\ntrust-block-slots = 0\n"), "");
}

TEST(ScenarioKv, FaultsAndMobilitySectionsRejectUnknownKeys) {
  // The sibling sections share the recoverable-diagnostic contract.
  {
    const util::IniFile ini =
        util::IniFile::parse_string("[faults]\nbanana = 1\n");
    sim::SlotFaultPlan faults;
    std::string error;
    EXPECT_FALSE(parse_faults_section(ini, faults, &error));
    EXPECT_NE(error.find("banana"), std::string::npos) << error;
  }
  {
    const util::IniFile ini =
        util::IniFile::parse_string("[mobility]\nbanana = 1\n");
    MobilitySpec mobility;
    std::string error;
    EXPECT_FALSE(parse_mobility_section(ini, mobility, &error));
    EXPECT_NE(error.find("banana"), std::string::npos) << error;
  }
}

TEST(ScenarioKvDeath, BadValuesAbort) {
  ScenarioConfig config;
  EXPECT_DEATH((void)apply_scenario_setting(config, "topology", "moebius"),
               "CHECK failed");
  EXPECT_DEATH((void)apply_scenario_setting(config, "n", "many"),
               "CHECK failed");
  EXPECT_DEATH((void)apply_scenario_setting(config, "er-p", "x"),
               "CHECK failed");
  EXPECT_DEATH((void)apply_scenario_setting(config, "channels", "psychic"),
               "CHECK failed");
}

}  // namespace
}  // namespace m2hew::runner
