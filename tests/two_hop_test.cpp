#include "core/two_hop.hpp"

#include <gtest/gtest.h>

#include "net/topology_gen.hpp"
#include "runner/scenario.hpp"

namespace m2hew::core {
namespace {

[[nodiscard]] net::Network path5() {
  // 0 - 1 - 2 - 3 - 4, shared channel.
  return net::Network(net::make_line(5),
                      std::vector<net::ChannelSet>(
                          5, net::ChannelSet(2, {0, 1})));
}

TEST(TwoHopGroundTruth, PathNeighborhoods) {
  const auto gt = two_hop_ground_truth(path5());
  ASSERT_EQ(gt.size(), 5u);
  EXPECT_EQ(gt[0], (std::vector<net::NodeId>{2}));
  EXPECT_EQ(gt[1], (std::vector<net::NodeId>{3}));
  EXPECT_EQ(gt[2], (std::vector<net::NodeId>{0, 4}));
  EXPECT_EQ(gt[3], (std::vector<net::NodeId>{1}));
  EXPECT_EQ(gt[4], (std::vector<net::NodeId>{2}));
}

TEST(TwoHopGroundTruth, CliqueHasNoTwoHop) {
  const net::Network network(
      net::make_clique(5),
      std::vector<net::ChannelSet>(5, net::ChannelSet(1, {0})));
  for (const auto& set : two_hop_ground_truth(network)) {
    EXPECT_TRUE(set.empty());
  }
}

TEST(TwoHopGroundTruth, StarLeavesSeeEachOther) {
  const net::Network network(
      net::make_star(4),
      std::vector<net::ChannelSet>(4, net::ChannelSet(1, {0})));
  const auto gt = two_hop_ground_truth(network);
  EXPECT_TRUE(gt[0].empty());  // hub already sees everyone at one hop
  EXPECT_EQ(gt[1], (std::vector<net::NodeId>{2, 3}));
  EXPECT_EQ(gt[2], (std::vector<net::NodeId>{1, 3}));
}

TEST(TwoHopGroundTruth, DirectedChainsCompose) {
  // 0 -> 1 -> 2: only node 2 has a two-hop in-neighbor (0).
  net::Topology t(3);
  t.add_arc(0, 1);
  t.add_arc(1, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(1, {0})));
  const auto gt = two_hop_ground_truth(network);
  EXPECT_TRUE(gt[0].empty());
  EXPECT_TRUE(gt[1].empty());
  EXPECT_EQ(gt[2], (std::vector<net::NodeId>{0}));
}

TEST(TwoHopGroundTruth, EmptySpanEdgeBreaksPath) {
  // 0 - 1 - 2 but the 1-2 edge shares no channel: no two-hop paths.
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  const net::Network network(
      std::move(t), {net::ChannelSet(3, {0}), net::ChannelSet(3, {0, 1}),
                     net::ChannelSet(3, {2})});
  const auto gt = two_hop_ground_truth(network);
  for (const auto& set : gt) EXPECT_TRUE(set.empty());
}

TEST(TwoHopDiscovery, CompletesAndMatchesGroundTruth) {
  const net::Network network = path5();
  sim::SlotEngineConfig config;
  config.max_slots = 200000;
  config.seed = 5;
  const TwoHopResult result = run_two_hop_discovery(network, 4, config);
  ASSERT_TRUE(result.complete);
  EXPECT_GT(result.phase1_slots, 0u);
  EXPECT_GT(result.phase2_slots, 0u);
  EXPECT_EQ(result.two_hop, two_hop_ground_truth(network));
}

TEST(TwoHopDiscovery, HeterogeneousUnitDisk) {
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kUnitDisk;
  scenario.n = 14;
  scenario.ud_radius = 0.35;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 8;
  scenario.set_size = 4;
  const net::Network network = runner::build_scenario(scenario, 6);
  sim::SlotEngineConfig config;
  config.max_slots = 2'000'000;
  config.seed = 7;
  const TwoHopResult result = run_two_hop_discovery(network, 8, config);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.two_hop, two_hop_ground_truth(network));
}

TEST(TwoHopDiscovery, Phase1FailureReportsIncomplete) {
  const net::Network network = path5();
  sim::SlotEngineConfig config;
  config.max_slots = 1;  // cannot possibly finish
  const TwoHopResult result = run_two_hop_discovery(network, 4, config);
  EXPECT_FALSE(result.complete);
  for (const auto& set : result.two_hop) EXPECT_TRUE(set.empty());
}

TEST(TwoHopDiscovery, PhasesHaveIndependentRandomness) {
  const net::Network network = path5();
  sim::SlotEngineConfig config;
  config.max_slots = 200000;
  config.seed = 9;
  const TwoHopResult result = run_two_hop_discovery(network, 4, config);
  ASSERT_TRUE(result.complete);
  // Not a strict requirement, but with independent seeds the two phases
  // virtually never take identical slot counts; catching seed-reuse bugs.
  EXPECT_NE(result.phase1_slots, result.phase2_slots);
}

}  // namespace
}  // namespace m2hew::core
