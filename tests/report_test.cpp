#include "runner/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace m2hew::runner {
namespace {

TEST(Report, VerdictReturnsItsArgument) {
  EXPECT_TRUE(print_verdict(true, "ok"));
  EXPECT_FALSE(print_verdict(false, "not ok"));
}

TEST(Report, BannerDoesNotCrashOnEmptyStrings) {
  print_banner("", "", "");
  print_banner("E0", "claim text", "scenario text");
}

TEST(Report, ResultsCsvIsCreatedAndWritable) {
  auto out = open_results_csv("report_test_scratch");
  ASSERT_TRUE(out.good());
  out << "a,b\n1,2\n";
  out.close();
  const std::filesystem::path path =
      std::filesystem::path(results_dir()) / "report_test_scratch.csv";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "a,b");
  in.close();
  std::filesystem::remove(path);
}

TEST(Report, ReopeningTruncates) {
  {
    auto out = open_results_csv("report_test_trunc");
    out << "old content that should vanish\n";
  }
  {
    auto out = open_results_csv("report_test_trunc");
    out << "x\n";
  }
  const std::filesystem::path path =
      std::filesystem::path(results_dir()) / "report_test_trunc.csv";
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "x");
  in.close();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace m2hew::runner
