// Equivalence property test for the indexed reception hot paths.
//
// Both engines resolve receptions through per-channel transmitter indexes
// (SlotEngineConfig/AsyncEngineConfig `indexed_reception`, the default) but
// keep the original per-listener scans as naive reference implementations.
// The rewrite's contract is *bit identity*: for any topology, channel
// assignment, policy, loss rate, interference schedule, start pattern and
// seed, the indexed path must produce exactly the same DiscoveryState,
// activity counters and completion slots/times as the reference — the same
// policy-callback order and the same shared loss_rng draw order.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/adaptive.hpp"
#include "core/algorithms.hpp"
#include "core/duty_cycle.hpp"
#include "core/multi_radio.hpp"
#include "core/termination.hpp"
#include "net/channel_assign.hpp"
#include "net/mobility.hpp"
#include "net/primary_user.hpp"
#include "net/propagation.hpp"
#include "net/topology_gen.hpp"
#include "net/topology_provider.hpp"
#include "sim/async_engine.hpp"
#include "sim/clock.hpp"
#include "sim/fault_plan.hpp"
#include "sim/multi_radio_engine.hpp"
#include "sim/slot_engine.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

// Soak runs (ci.yml) export M2HEW_SOAK_SEED to shift every scenario seed,
// widening property coverage across scheduled runs without code changes.
[[nodiscard]] std::uint64_t soak_offset() {
  const char* env = std::getenv("M2HEW_SOAK_SEED");
  return env == nullptr ? 0 : std::strtoull(env, nullptr, 10);
}

// Deterministic pseudo-random interference field: active ~20% of the time,
// decorrelated across (time quantum, node, channel).
[[nodiscard]] bool pseudo_pu(std::uint64_t quantum, net::NodeId node,
                             net::ChannelId channel) {
  std::uint64_t h = (quantum + 1) * 0x9E3779B97F4A7C15ull;
  h ^= (static_cast<std::uint64_t>(node) + 1) * 0xBF58476D1CE4E5B9ull;
  h ^= (static_cast<std::uint64_t>(channel) + 1) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h % 5 == 0;
}

[[nodiscard]] net::Network random_network(util::Rng& rng, std::uint64_t seed,
                                          net::NodeId n, bool asymmetric,
                                          bool masked) {
  net::Topology topology = net::make_erdos_renyi(n, 0.45, rng);
  if (asymmetric) topology = net::make_asymmetric(topology, 0.4, rng);
  auto assignment = net::uniform_random_assignment(n, 6, 3, rng);
  return masked ? net::Network(std::move(topology), std::move(assignment),
                               net::random_propagation_filter(6, 0.7, seed))
                : net::Network(std::move(topology), std::move(assignment));
}

// Randomized fault plan over the first `horizon` time units: churn, burst
// loss and scheduled spectrum faults mixed in by seed bits. The identity
// contract must hold with ANY plan attached — the plan rides in the shared
// config and is consumed identically on both reception paths.
template <typename Time>
[[nodiscard]] sim::FaultPlan<Time> make_fault_plan(std::uint64_t seed,
                                                   net::NodeId n,
                                                   double horizon) {
  sim::FaultPlan<Time> plan;
  util::Rng rng(seed ^ 0xFA157);
  if (seed % 2 == 0) {
    plan.churn.crash_probability = 0.3 + 0.2 * static_cast<double>(seed % 3);
    plan.churn.earliest_crash = static_cast<Time>(horizon * 0.05);
    plan.churn.latest_crash = static_cast<Time>(horizon * 0.5);
    plan.churn.min_down = static_cast<Time>(horizon * 0.05);
    plan.churn.max_down = static_cast<Time>(horizon * 0.3);
    plan.churn.reset_policy_on_recovery = (seed % 4) == 0;
  }
  if (seed % 3 == 0) {
    plan.burst_loss.enabled = true;
    plan.burst_loss.p_good_to_bad = 0.05;
    plan.burst_loss.p_bad_to_good = 0.2;
    plan.burst_loss.loss_good = 0.02;
    plan.burst_loss.loss_bad = 0.8;
  }
  if (seed % 5 == 0) {
    for (net::NodeId u = 0; u < n; ++u) {
      plan.positions.push_back(
          {rng.uniform_double(), rng.uniform_double()});
    }
    for (int i = 0; i < 4; ++i) {
      net::ScheduledPrimaryUser pu;
      pu.user.position = {rng.uniform_double(), rng.uniform_double()};
      pu.user.radius = 0.3 + 0.3 * rng.uniform_double();
      pu.user.channel = static_cast<net::ChannelId>(rng.uniform(6));
      pu.on_from = horizon * 0.6 * rng.uniform_double();
      pu.on_until = pu.on_from + horizon * 0.3 * rng.uniform_double();
      plan.spectrum.push_back(pu);
    }
  }
  if (seed % 2 == 1) {
    plan.adversary.fraction = 0.2 + 0.2 * static_cast<double>(seed % 3);
    plan.adversary.attack = static_cast<sim::AdversaryAttack>(seed % 4);
    plan.adversary.byzantine_tx = 0.6;
    plan.adversary.victim_fraction = 0.5;
  }
  return plan;
}

void expect_same_state(const net::Network& network,
                       const sim::DiscoveryState& a,
                       const sim::DiscoveryState& b) {
  EXPECT_EQ(a.covered_links(), b.covered_links());
  EXPECT_EQ(a.reception_count(), b.reception_count());
  for (const net::Link link : network.links()) {
    ASSERT_EQ(a.is_covered(link), b.is_covered(link))
        << "link " << link.from << "->" << link.to;
    if (a.is_covered(link)) {
      EXPECT_DOUBLE_EQ(a.first_coverage_time(link),
                       b.first_coverage_time(link))
          << "link " << link.from << "->" << link.to;
    }
  }
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    const auto& ta = a.neighbor_table(u);
    const auto& tb = b.neighbor_table(u);
    ASSERT_EQ(ta.size(), tb.size()) << "table of node " << u;
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].neighbor, tb[i].neighbor)
          << "table of node " << u << " entry " << i;
    }
  }
}

void expect_same_robustness(const sim::RobustnessReport& a,
                            const sim::RobustnessReport& b) {
  EXPECT_EQ(a.enabled, b.enabled);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
  EXPECT_EQ(a.down_at_end, b.down_at_end);
  EXPECT_EQ(a.surviving_links, b.surviving_links);
  EXPECT_EQ(a.covered_surviving_links, b.covered_surviving_links);
  EXPECT_EQ(a.ghost_entries, b.ghost_entries);
  EXPECT_EQ(a.recovered_links, b.recovered_links);
  EXPECT_EQ(a.rediscovered_links, b.rediscovered_links);
  EXPECT_DOUBLE_EQ(a.mean_rediscovery, b.mean_rediscovery);
  EXPECT_DOUBLE_EQ(a.max_rediscovery, b.max_rediscovery);
  EXPECT_EQ(a.adversary, b.adversary);
  EXPECT_EQ(a.adversary_nodes, b.adversary_nodes);
  EXPECT_EQ(a.real_entries, b.real_entries);
  EXPECT_EQ(a.fake_entries, b.fake_entries);
  EXPECT_EQ(a.isolated_fakes, b.isolated_fakes);
  EXPECT_EQ(a.honest_isolated, b.honest_isolated);
  EXPECT_DOUBLE_EQ(a.mean_isolation, b.mean_isolation);
  EXPECT_DOUBLE_EQ(a.max_isolation, b.max_isolation);
}

void expect_same_activity(const std::vector<sim::RadioActivity>& a,
                          const std::vector<sim::RadioActivity>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a[u].transmit, b[u].transmit) << "node " << u;
    EXPECT_EQ(a[u].receive, b[u].receive) << "node " << u;
    EXPECT_EQ(a[u].quiet, b[u].quiet) << "node " << u;
  }
}

class EngineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalence, SlotEngineIndexedMatchesReference) {
  const std::uint64_t seed = GetParam() + soak_offset();
  util::Rng rng(seed);
  const auto n = static_cast<net::NodeId>(8 + 8 * (seed % 3));
  const net::Network network = random_network(
      rng, seed, n, /*asymmetric=*/(seed % 2) != 0, /*masked=*/(seed % 3) == 0);

  sim::SlotEngineConfig config;
  config.max_slots = 400;
  config.seed = seed;
  config.stop_when_complete = (seed % 2) != 0;
  config.loss_probability = (seed % 3 == 1) ? 0.25 : 0.0;
  if (seed % 2 == 0) {
    config.interference = [](std::uint64_t slot, net::NodeId node,
                             net::ChannelId c) {
      return pseudo_pu(slot, node, c);
    };
  }
  config.starts.assign(n, 0);
  for (auto& s : config.starts) s = rng.uniform(25);
  config.faults = make_fault_plan<std::uint64_t>(seed, n, 400.0);
  if (config.faults.burst_loss.enabled) config.loss_probability = 0.0;

  sim::SyncPolicyFactory factory;
  switch (seed % 4) {
    case 0:
      factory = core::make_algorithm1(16);
      break;
    case 1:
      factory = core::make_algorithm2();
      break;
    case 2:
      factory = core::make_algorithm3(8);
      break;
    default:
      // Feedback-driven policy under a wrapper: exercises the listen
      // outcome sequencing (and its forwarding) hardest.
      factory = core::with_termination(core::make_adaptive(), 60);
      break;
  }

  sim::SlotEngineConfig indexed = config;
  indexed.indexed_reception = true;
  sim::SlotEngineConfig reference = config;
  reference.indexed_reception = false;

  const auto a = sim::run_slot_engine(network, factory, indexed);
  const auto b = sim::run_slot_engine(network, factory, reference);

  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.completion_slot, b.completion_slot);
  EXPECT_EQ(a.slots_executed, b.slots_executed);
  expect_same_activity(a.activity, b.activity);
  expect_same_state(network, a.state, b.state);
  expect_same_robustness(a.robustness, b.robustness);
}

TEST_P(EngineEquivalence, AsyncEngineIndexedMatchesReference) {
  const std::uint64_t seed = GetParam() + soak_offset();
  util::Rng rng(seed ^ 0xA5A5);
  const auto n = static_cast<net::NodeId>(6 + 4 * (seed % 2));
  const net::Network network = random_network(
      rng, seed, n, /*asymmetric=*/(seed % 3) == 0, /*masked=*/(seed % 2) == 0);

  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.slots_per_frame = 3;
  config.max_real_time = 500.0;
  config.max_frames_per_node = 4000;
  config.seed = seed;
  config.stop_when_complete = (seed % 2) == 0;
  config.loss_probability = (seed % 3 == 2) ? 0.2 : 0.0;
  if (seed % 2 != 0) {
    config.interference = [](double time, net::NodeId node,
                             net::ChannelId c) {
      return pseudo_pu(static_cast<std::uint64_t>(time * 4.0), node, c);
    };
  }
  config.starts.assign(n, 0.0);
  for (auto& t : config.starts) t = rng.uniform_double() * 10.0;
  config.faults = make_fault_plan<double>(seed, n, 500.0);
  if (config.faults.burst_loss.enabled) config.loss_probability = 0.0;
  if (seed % 7 == 0) {
    // Drift wander replaces the clock_builder below on these seeds.
    config.faults.drift_wander.enabled = true;
    config.faults.drift_wander.max_drift = 0.12;
  }
  config.clock_builder = [](net::NodeId, std::uint64_t clock_seed) {
    sim::PiecewiseDriftClock::Config drift;
    drift.max_drift = 0.1;
    drift.min_segment = 10.0;
    drift.max_segment = 40.0;
    return std::make_unique<sim::PiecewiseDriftClock>(drift, clock_seed);
  };

  const sim::AsyncPolicyFactory factory =
      (seed % 2 == 0) ? core::make_algorithm4(6)
                      : core::with_termination(core::make_algorithm4(4), 80);

  sim::AsyncEngineConfig indexed = config;
  indexed.indexed_reception = true;
  sim::AsyncEngineConfig reference = config;
  reference.indexed_reception = false;

  const auto a = sim::run_async_engine(network, factory, indexed);
  const auto b = sim::run_async_engine(network, factory, reference);

  EXPECT_EQ(a.complete, b.complete);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  EXPECT_DOUBLE_EQ(a.t_s, b.t_s);
  EXPECT_EQ(a.frames_started, b.frames_started);
  EXPECT_EQ(a.full_frames_since_ts, b.full_frames_since_ts);
  expect_same_activity(a.activity, b.activity);
  expect_same_state(network, a.state, b.state);
  expect_same_robustness(a.robustness, b.robustness);
}

// A moving epoch schedule for the dynamic-topology legs below: the
// indexed/reference contract must also hold while the engines swap
// adjacency at epoch boundaries (net/topology_provider.hpp) — both paths
// filter receptions through the same per-epoch network.
[[nodiscard]] net::MobilityConfig mobility_config(std::uint64_t seed,
                                                  net::NodeId n) {
  net::MobilityConfig config;
  config.nodes = n;
  config.side = 1.0;
  config.radius = 0.45;
  config.speed_min = 0.02;
  config.speed_max = 0.05 + 0.05 * static_cast<double>(seed % 3);
  config.pause_epochs = seed % 2;
  config.epochs = 3 + seed % 3;
  return config;
}

TEST_P(EngineEquivalence, SlotEngineEpochScheduleIndexedMatchesReference) {
  const std::uint64_t seed = GetParam() + soak_offset();
  util::Rng rng(seed ^ 0xE90);
  const auto n = static_cast<net::NodeId>(10 + 4 * (seed % 3));
  const auto assignment = net::uniform_random_assignment(n, 6, 3, rng);
  const net::EpochTopologyProvider provider(mobility_config(seed, n),
                                            assignment, seed);
  const net::Network& network = provider.union_network();

  sim::SlotEngineConfig config;
  config.max_slots = 400;
  config.seed = seed;
  config.stop_when_complete = (seed % 2) != 0;
  config.loss_probability = (seed % 3 == 1) ? 0.25 : 0.0;
  if (seed % 2 == 0) {
    config.interference = [](std::uint64_t slot, net::NodeId node,
                             net::ChannelId c) {
      return pseudo_pu(slot, node, c);
    };
  }
  config.starts.assign(n, 0);
  for (auto& s : config.starts) s = rng.uniform(25);
  config.faults = make_fault_plan<std::uint64_t>(seed, n, 400.0);
  if (config.faults.burst_loss.enabled) config.loss_probability = 0.0;
  config.topology = &provider;
  config.epoch_length = 60 + 20 * (seed % 3);

  // Half the seeds run duty-cycled (the contact-tracing configuration):
  // off-slot quiescence must be identical on both reception paths too.
  sim::SyncPolicyFactory factory = (seed % 2 == 0)
                                       ? core::make_algorithm3(8)
                                       : core::make_algorithm2();
  if (seed % 2 == 0) {
    factory = core::with_duty_cycle(std::move(factory), 1, 1 + seed % 3);
  }

  sim::SlotEngineConfig indexed = config;
  indexed.indexed_reception = true;
  sim::SlotEngineConfig reference = config;
  reference.indexed_reception = false;

  const auto a = sim::run_slot_engine(network, factory, indexed);
  const auto b = sim::run_slot_engine(network, factory, reference);

  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.completion_slot, b.completion_slot);
  EXPECT_EQ(a.slots_executed, b.slots_executed);
  expect_same_activity(a.activity, b.activity);
  expect_same_state(network, a.state, b.state);
  expect_same_robustness(a.robustness, b.robustness);
}

TEST_P(EngineEquivalence, AsyncEngineEpochScheduleIndexedMatchesReference) {
  const std::uint64_t seed = GetParam() + soak_offset();
  util::Rng rng(seed ^ 0xE91);
  const auto n = static_cast<net::NodeId>(8 + 4 * (seed % 2));
  const auto assignment = net::uniform_random_assignment(n, 6, 3, rng);
  const net::EpochTopologyProvider provider(mobility_config(seed, n),
                                            assignment, seed);
  const net::Network& network = provider.union_network();

  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.slots_per_frame = 3;
  config.max_real_time = 400.0;
  config.max_frames_per_node = 4000;
  config.seed = seed;
  config.stop_when_complete = (seed % 2) == 0;
  config.loss_probability = (seed % 3 == 2) ? 0.2 : 0.0;
  config.starts.assign(n, 0.0);
  for (auto& t : config.starts) t = rng.uniform_double() * 10.0;
  config.faults = make_fault_plan<double>(seed, n, 400.0);
  if (config.faults.burst_loss.enabled) config.loss_probability = 0.0;
  config.clock_builder = [](net::NodeId, std::uint64_t clock_seed) {
    sim::PiecewiseDriftClock::Config drift;
    drift.max_drift = 0.1;
    drift.min_segment = 10.0;
    drift.max_segment = 40.0;
    return std::make_unique<sim::PiecewiseDriftClock>(drift, clock_seed);
  };
  config.topology = &provider;
  config.epoch_length = 40.0 + 15.0 * static_cast<double>(seed % 2);

  const sim::AsyncPolicyFactory factory =
      (seed % 2 == 0) ? core::make_algorithm4(6)
                      : core::with_termination(core::make_algorithm4(4), 80);

  sim::AsyncEngineConfig indexed = config;
  indexed.indexed_reception = true;
  sim::AsyncEngineConfig reference = config;
  reference.indexed_reception = false;

  const auto a = sim::run_async_engine(network, factory, indexed);
  const auto b = sim::run_async_engine(network, factory, reference);

  EXPECT_EQ(a.complete, b.complete);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  EXPECT_DOUBLE_EQ(a.t_s, b.t_s);
  EXPECT_EQ(a.frames_started, b.frames_started);
  expect_same_activity(a.activity, b.activity);
  expect_same_state(network, a.state, b.state);
  expect_same_robustness(a.robustness, b.robustness);
}

TEST_P(EngineEquivalence, MultiRadioEpochScheduleIndexedMatchesReference) {
  const std::uint64_t seed = GetParam() + soak_offset();
  util::Rng rng(seed ^ 0xE92);
  const auto n = static_cast<net::NodeId>(10 + 2 * (seed % 3));
  const auto assignment = net::uniform_random_assignment(n, 6, 3, rng);
  const net::EpochTopologyProvider provider(mobility_config(seed, n),
                                            assignment, seed);
  const net::Network& network = provider.union_network();

  sim::MultiRadioEngineConfig config;
  config.max_slots = 300;
  config.seed = seed;
  config.stop_when_complete = (seed % 2) != 0;
  config.loss_probability = (seed % 3 == 1) ? 0.2 : 0.0;
  config.starts.assign(n, 0);
  for (auto& s : config.starts) s = rng.uniform(20);
  config.faults = make_fault_plan<std::uint64_t>(seed, n, 300.0);
  if (config.faults.burst_loss.enabled) config.loss_probability = 0.0;
  config.topology = &provider;
  config.epoch_length = 50 + 25 * (seed % 2);

  const sim::MultiRadioPolicyFactory factory =
      core::make_multi_radio_alg3(1 + static_cast<unsigned>(seed % 2), 8);

  sim::MultiRadioEngineConfig indexed = config;
  indexed.indexed_reception = true;
  sim::MultiRadioEngineConfig reference = config;
  reference.indexed_reception = false;

  const auto a = sim::run_multi_radio_engine(network, factory, indexed);
  const auto b = sim::run_multi_radio_engine(network, factory, reference);

  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.completion_slot, b.completion_slot);
  EXPECT_EQ(a.slots_executed, b.slots_executed);
  expect_same_activity(a.activity, b.activity);
  expect_same_state(network, a.state, b.state);
  expect_same_robustness(a.robustness, b.robustness);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineEquivalence,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace m2hew
