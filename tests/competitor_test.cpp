// Determinism and equivalence contracts for the competitor policies
// (core/competitors.hpp, the E24 tournament entrants):
//   - serial == parallel bit-identity through run_sync_trials,
//   - with_termination wrapper composition keeps the activity invariant,
//   - the consistent-hop SyncPolicySpec equals its virtual-policy oracle
//     on BOTH kernels, bit-for-bit, including under a fault plan,
//   - each competitor actually completes discovery on a clean clique.
#include "core/competitors.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/policy_spec.hpp"
#include "core/termination.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "sim/fault_plan.hpp"
#include "sim/slot_engine.hpp"
#include "sim/soa_kernel.hpp"

namespace m2hew {
namespace {

struct Competitor {
  const char* name;
  sim::SyncPolicyFactory factory;
};

[[nodiscard]] std::vector<Competitor> competitors() {
  std::vector<Competitor> list;
  list.push_back({"mcdis", core::make_mcdis()});
  list.push_back({"rendezvous", core::make_blind_rendezvous()});
  list.push_back({"consistent-hop", core::make_consistent_hop()});
  return list;
}

[[nodiscard]] net::Network heterogeneous_net(std::uint64_t seed) {
  runner::ScenarioConfig config;
  config.topology = runner::TopologyKind::kClique;
  config.n = 10;
  config.channels = runner::ChannelKind::kVariableRandom;
  config.universe = 8;
  config.min_size = 2;
  config.max_size = 6;
  return runner::build_scenario(config, seed);
}

void expect_identical(const runner::SyncTrialStats& a,
                      const runner::SyncTrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.completion_slots.count(), b.completion_slots.count());
  for (std::size_t i = 0; i < a.completion_slots.count(); ++i) {
    EXPECT_EQ(a.completion_slots.values()[i], b.completion_slots.values()[i])
        << "trial-ordered sample " << i;
  }
}

TEST(CompetitorPolicies, SerialAndParallelTrialsAreBitIdentical) {
  const net::Network network = heterogeneous_net(11);
  for (const Competitor& competitor : competitors()) {
    runner::SyncTrialConfig config;
    config.trials = 10;
    config.seed = 77;
    config.engine.max_slots = 500000;

    config.threads = 1;
    const auto serial =
        runner::run_sync_trials(network, competitor.factory, config);
    config.threads = 4;
    const auto parallel =
        runner::run_sync_trials(network, competitor.factory, config);
    expect_identical(serial, parallel);
    // The contract is vacuous if nothing ever finishes.
    EXPECT_GT(serial.completed, 0u) << competitor.name;
  }
}

TEST(CompetitorPolicies, CompleteDiscoveryOnCleanClique) {
  const net::Network network = heterogeneous_net(23);
  for (const Competitor& competitor : competitors()) {
    runner::SyncTrialConfig config;
    config.trials = 5;
    config.seed = 9;
    config.threads = 1;
    config.engine.max_slots = 2000000;
    const auto stats =
        runner::run_sync_trials(network, competitor.factory, config);
    EXPECT_EQ(stats.completed, stats.trials) << competitor.name;
  }
}

TEST(CompetitorPolicies, ComposeWithTerminationWrapper) {
  // with_termination must forward competitor decisions unchanged until the
  // silence threshold trips; afterwards the node is quiet but every slot
  // is still accounted for (the engine's activity invariant).
  const net::Network network = heterogeneous_net(5);
  for (const Competitor& competitor : competitors()) {
    sim::SlotEngineConfig config;
    config.max_slots = 4000;
    config.seed = 31;
    config.stop_when_complete = false;
    const auto wrapped = sim::run_slot_engine(
        network, core::with_termination(competitor.factory, 300), config);
    ASSERT_EQ(wrapped.activity.size(), network.node_count());
    for (const sim::RadioActivity& a : wrapped.activity) {
      EXPECT_EQ(a.total(), 4000u) << competitor.name;
    }
    // Before any termination can trigger, the wrapper is transparent: the
    // first 300 slots of a wrapped run equal an unwrapped run's prefix, so
    // coverage at that horizon matches exactly.
    sim::SlotEngineConfig prefix = config;
    prefix.max_slots = 300;
    const auto bare =
        sim::run_slot_engine(network, competitor.factory, prefix);
    const auto wrapped_prefix = sim::run_slot_engine(
        network, core::with_termination(competitor.factory, 300), prefix);
    EXPECT_EQ(bare.state.covered_links(),
              wrapped_prefix.state.covered_links())
        << competitor.name;
    EXPECT_EQ(bare.state.reception_count(),
              wrapped_prefix.state.reception_count())
        << competitor.name;
  }
}

// Fault plan mixing churn and burst loss inside the run's horizon, so the
// spec-vs-oracle identity below is exercised on the faulted code paths.
[[nodiscard]] sim::FaultPlan<std::uint64_t> faulted_plan() {
  sim::FaultPlan<std::uint64_t> plan;
  plan.churn.crash_probability = 0.4;
  plan.churn.earliest_crash = 50;
  plan.churn.latest_crash = 600;
  plan.churn.min_down = 50;
  plan.churn.max_down = 200;
  plan.churn.reset_policy_on_recovery = true;
  plan.burst_loss.enabled = true;
  plan.burst_loss.p_good_to_bad = 0.05;
  plan.burst_loss.p_bad_to_good = 0.2;
  plan.burst_loss.loss_good = 0.02;
  plan.burst_loss.loss_bad = 0.8;
  return plan;
}

TEST(ConsistentHopSpec, SpecFactoryEqualsOracleFactory) {
  // SyncPolicySpec::consistent_hop() through make_policy_factory must be
  // THE SAME policy as make_consistent_hop(): same draws, same actions.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const net::Network network = heterogeneous_net(seed);
    sim::SlotEngineConfig config;
    config.max_slots = 2000;
    config.seed = seed;
    config.stop_when_complete = false;
    if (seed % 2 == 1) config.faults = faulted_plan();

    const auto oracle =
        sim::run_slot_engine(network, core::make_consistent_hop(), config);
    const auto via_spec = sim::run_slot_engine(
        network,
        core::make_policy_factory(core::SyncPolicySpec::consistent_hop()),
        config);

    EXPECT_EQ(oracle.complete, via_spec.complete);
    EXPECT_EQ(oracle.completion_slot, via_spec.completion_slot);
    EXPECT_EQ(oracle.state.covered_links(), via_spec.state.covered_links());
    EXPECT_EQ(oracle.state.reception_count(),
              via_spec.state.reception_count());
    ASSERT_EQ(oracle.activity.size(), via_spec.activity.size());
    for (std::size_t u = 0; u < oracle.activity.size(); ++u) {
      EXPECT_EQ(oracle.activity[u].transmit, via_spec.activity[u].transmit);
      EXPECT_EQ(oracle.activity[u].receive, via_spec.activity[u].receive);
      EXPECT_EQ(oracle.activity[u].quiet, via_spec.activity[u].quiet);
    }
  }
}

TEST(ConsistentHopSpec, SoaKernelMatchesOracleBitExactly) {
  // The SoA flat table built from the consistent-hop spec runs the exact
  // run the classic engine runs with the virtual policy — including under
  // churn + burst loss (the soa_kernel_test sweep covers alg1-3; this
  // pins the competitor's hop-map channel law).
  for (const std::uint64_t seed : {4u, 5u, 6u, 7u}) {
    const net::Network network = heterogeneous_net(seed);
    const core::SyncPolicySpec spec = core::SyncPolicySpec::consistent_hop();
    sim::SlotEngineConfig config;
    config.max_slots = 1500;
    config.seed = seed;
    config.stop_when_complete = (seed % 2) != 0;
    if (seed % 2 == 0) config.faults = faulted_plan();

    const auto engine = sim::run_slot_engine(
        network, core::make_policy_factory(spec), config);
    const auto soa = sim::run_soa_slot_kernel(
        network, core::build_soa_policy_table(network, spec), config);

    EXPECT_EQ(engine.complete, soa.complete);
    EXPECT_EQ(engine.completion_slot, soa.completion_slot);
    EXPECT_EQ(engine.slots_executed, soa.slots_executed);
    EXPECT_EQ(engine.state.covered_links(),
              static_cast<std::size_t>(soa.covered_links));
    EXPECT_EQ(engine.state.reception_count(),
              static_cast<std::size_t>(soa.receptions));
    ASSERT_EQ(engine.activity.size(), soa.activity.size());
    for (std::size_t u = 0; u < engine.activity.size(); ++u) {
      EXPECT_EQ(engine.activity[u].transmit, soa.activity[u].transmit)
          << "node " << u;
      EXPECT_EQ(engine.activity[u].receive, soa.activity[u].receive)
          << "node " << u;
      EXPECT_EQ(engine.activity[u].quiet, soa.activity[u].quiet)
          << "node " << u;
    }
  }
}

TEST(McDisPolicy, DutyCycleAndQuietSlots) {
  // The prime pair decides the awake pattern: a (2,3) node is asleep only
  // in slots ≡ 1 or 5 (mod 6) — and asleep slots draw nothing, so two
  // policies fed different RNGs agree on their wake schedule.
  net::ChannelSet channels(4, {0, 1, 2, 3});
  core::McDisPolicy policy(channels, /*id=*/0);  // class 0 -> primes (2,3)
  EXPECT_NEAR(policy.duty_cycle(), 1.0 / 2 + 1.0 / 3 - 1.0 / 6, 1e-12);
  util::Rng rng(99);
  std::size_t quiet = 0;
  for (std::uint64_t t = 0; t < 60; ++t) {
    const sim::SlotAction action = policy.next_slot(rng);
    const bool asleep = (t % 2 != 0 && t % 3 != 0);
    EXPECT_EQ(action.mode == sim::Mode::kQuiet, asleep) << "slot " << t;
    if (asleep) ++quiet;
  }
  EXPECT_EQ(quiet, 20u);  // 1/3 of slots for the (2,3) pair
}

TEST(BlindRendezvousPolicy, PeriodPrimeCoversUniverse) {
  net::ChannelSet channels(8, {0, 1, 2, 3, 4, 5, 6, 7});
  core::BlindRendezvousPolicy policy(channels, /*id=*/3, /*id_bound=*/10,
                                     /*universe_size=*/8);
  EXPECT_EQ(policy.period_prime(), 11u);  // smallest prime >= 8
}

}  // namespace
}  // namespace m2hew
