#include "net/channel_assign.hpp"

#include <gtest/gtest.h>

#include "net/topology_gen.hpp"
#include "util/rng.hpp"

namespace m2hew::net {
namespace {

TEST(ChannelAssign, HomogeneousIsIdenticalEverywhere) {
  const ChannelAssignment a = homogeneous_assignment(5, 10, 4);
  ASSERT_EQ(a.size(), 5u);
  for (const auto& s : a) {
    EXPECT_EQ(s, ChannelSet(10, {0, 1, 2, 3}));
  }
}

TEST(ChannelAssign, UniformRandomSizesAndUniverse) {
  util::Rng rng(1);
  const ChannelAssignment a = uniform_random_assignment(20, 16, 5, rng);
  ASSERT_EQ(a.size(), 20u);
  for (const auto& s : a) {
    EXPECT_EQ(s.size(), 5u);
    EXPECT_EQ(s.universe_size(), 16u);
  }
}

TEST(ChannelAssign, UniformRandomCoversWholeUniverse) {
  util::Rng rng(2);
  // With 200 nodes × 4 channels out of 8, every channel should appear.
  const ChannelAssignment a = uniform_random_assignment(200, 8, 4, rng);
  ChannelSet seen(8);
  for (const auto& s : a) seen = seen.unite(s);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ChannelAssign, UniformRandomFullSizeIsFullSet) {
  util::Rng rng(3);
  const ChannelAssignment a = uniform_random_assignment(3, 6, 6, rng);
  for (const auto& s : a) EXPECT_EQ(s, ChannelSet::full(6));
}

TEST(ChannelAssign, VariableSizesInRange) {
  util::Rng rng(4);
  const ChannelAssignment a =
      variable_size_random_assignment(100, 12, 2, 7, rng);
  bool saw_min = false;
  bool saw_max = false;
  for (const auto& s : a) {
    EXPECT_GE(s.size(), 2u);
    EXPECT_LE(s.size(), 7u);
    saw_min |= s.size() == 2;
    saw_max |= s.size() == 7;
  }
  EXPECT_TRUE(saw_min);
  EXPECT_TRUE(saw_max);
}

TEST(ChannelAssign, ChainOverlapExactSpans) {
  const auto [assignment, universe] = chain_overlap_assignment(4, 5, 2);
  ASSERT_EQ(assignment.size(), 4u);
  EXPECT_EQ(universe, 3u * 3u + 5u);  // (n-1)·(s-k) + s
  for (const auto& s : assignment) EXPECT_EQ(s.size(), 5u);
  // Adjacent nodes overlap in exactly k = 2 channels; nodes two apart do
  // not overlap at all (stride 3, set size 5 -> gap).
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    EXPECT_EQ(assignment[i].intersection_size(assignment[i + 1]), 2u);
  }
  EXPECT_EQ(assignment[0].intersection_size(assignment[2]), 0u);
}

TEST(ChannelAssign, ChainOverlapFullOverlapIsHomogeneous) {
  const auto [assignment, universe] = chain_overlap_assignment(3, 4, 4);
  EXPECT_EQ(universe, 4u);
  for (const auto& s : assignment) EXPECT_EQ(s, ChannelSet::full(4));
}

TEST(ChannelAssign, GenerateWithNonemptySpansSatisfiesEdges) {
  util::Rng rng(5);
  const Topology topo = make_clique(8);
  const ChannelAssignment a = generate_with_nonempty_spans(
      topo, 200,
      [&] { return uniform_random_assignment(8, 6, 3, rng); });
  for (const auto& [u, v] : topo.edges()) {
    EXPECT_GT(a[u].intersection_size(a[v]), 0u);
  }
}

TEST(ChannelAssignDeath, ChainOverlapInvalidParamsAbort) {
  EXPECT_DEATH((void)chain_overlap_assignment(3, 4, 0), "CHECK failed");
  EXPECT_DEATH((void)chain_overlap_assignment(3, 4, 5), "CHECK failed");
}

TEST(ChannelAssignDeath, HomogeneousSizeAboveUniverseAborts) {
  EXPECT_DEATH((void)homogeneous_assignment(2, 4, 5), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::net
