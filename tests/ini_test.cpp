#include "util/ini.hpp"

#include <gtest/gtest.h>

namespace m2hew::util {
namespace {

constexpr const char* kSample = R"(
# top comment
global = 1

[experiment]
name = rho_sweep        ; trailing comment is part of the value? no: kept
trials = 30
values = 8 4 2 1
rate = 0.25

[scenario]
topology = line
n = 12
)";

TEST(Ini, SectionsAndKeys) {
  const IniFile ini = IniFile::parse_string(kSample);
  EXPECT_TRUE(ini.has_section("experiment"));
  EXPECT_TRUE(ini.has_section("scenario"));
  EXPECT_FALSE(ini.has_section("missing"));
  EXPECT_TRUE(ini.has("scenario", "topology"));
  EXPECT_FALSE(ini.has("scenario", "nope"));
  // Unnamed section holds keys before the first header.
  EXPECT_EQ(ini.get_int("", "global"), 1);
}

TEST(Ini, TypedGetters) {
  const IniFile ini = IniFile::parse_string(kSample);
  EXPECT_EQ(ini.get("scenario", "topology"), "line");
  EXPECT_EQ(ini.get_int("experiment", "trials"), 30);
  EXPECT_DOUBLE_EQ(ini.get_double("experiment", "rate"), 0.25);
  EXPECT_EQ(ini.get("missing", "x", "dft"), "dft");
  EXPECT_EQ(ini.get_int("experiment", "absent", 7), 7);
}

TEST(Ini, ListValues) {
  const IniFile ini = IniFile::parse_string(kSample);
  const auto values = ini.get_list("experiment", "values");
  EXPECT_EQ(values, (std::vector<double>{8.0, 4.0, 2.0, 1.0}));
  EXPECT_TRUE(ini.get_list("experiment", "absent").empty());
}

TEST(Ini, KeysPreserveInsertionOrder) {
  const IniFile ini = IniFile::parse_string(kSample);
  const auto keys = ini.keys("experiment");
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0], "name");
  EXPECT_EQ(keys[3], "rate");
  EXPECT_TRUE(ini.keys("missing").empty());
}

TEST(Ini, LaterAssignmentWins) {
  const IniFile ini = IniFile::parse_string("[a]\nx = 1\nx = 2\n");
  EXPECT_EQ(ini.get_int("a", "x"), 2);
  EXPECT_EQ(ini.keys("a").size(), 1u);
}

TEST(Ini, WhitespaceAndCommentsIgnored) {
  const IniFile ini = IniFile::parse_string(
      "  [  s  ]  \n   key   =   spaced value here   \n; comment\n");
  EXPECT_EQ(ini.get("s", "key"), "spaced value here");
}

// With an IniParseError out-param, malformed input is recoverable: the
// parser reports the 1-based line, a message and the offending text, and
// returns what it parsed before the error (tools print file:line and exit
// nonzero instead of aborting).
TEST(IniParseError, ReportsLineMessageAndText) {
  IniParseError error;
  const IniFile ini = IniFile::parse_string(
      "[a]\nx = 1\n[unterminated\ny = 2\n", &error);
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.line, 3u);
  EXPECT_FALSE(error.message.empty());
  EXPECT_EQ(error.text, "[unterminated");
  // The prefix before the bad line is still available.
  EXPECT_EQ(ini.get_int("a", "x"), 1);
  // Parsing stopped at the error, so the following line never landed.
  EXPECT_FALSE(ini.has("a", "y"));
}

TEST(IniParseError, MissingEqualsAndEmptyKey) {
  IniParseError error;
  (void)IniFile::parse_string("no equals sign\n", &error);
  EXPECT_EQ(error.line, 1u);
  EXPECT_EQ(error.text, "no equals sign");

  error = IniParseError{};
  (void)IniFile::parse_string("[a]\n\n= novalue\n", &error);
  EXPECT_EQ(error.line, 3u);
}

TEST(IniParseError, OkWhenInputIsWellFormed) {
  IniParseError error;
  const IniFile ini = IniFile::parse_string(kSample, &error);
  EXPECT_TRUE(error.ok());
  EXPECT_EQ(error.line, 0u);
  EXPECT_EQ(ini.get_int("experiment", "trials"), 30);
}

// Without an out-param the historical contract stands: CHECK-abort.
TEST(IniDeath, MalformedLinesAbort) {
  EXPECT_DEATH((void)IniFile::parse_string("[unterminated\n"),
               "CHECK failed");
  EXPECT_DEATH((void)IniFile::parse_string("no equals sign\n"),
               "CHECK failed");
  EXPECT_DEATH((void)IniFile::parse_string("= novalue\n"), "CHECK failed");
}

TEST(IniDeath, BadNumbersAbort) {
  const IniFile ini = IniFile::parse_string("[a]\nx = abc\nl = 1 z 3\n");
  EXPECT_DEATH((void)ini.get_int("a", "x"), "CHECK failed");
  EXPECT_DEATH((void)ini.get_double("a", "x"), "CHECK failed");
  EXPECT_DEATH((void)ini.get_list("a", "l"), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::util
