// Tests for the Definition 1–4 machinery and the Lemma 8 construction.
#include "sim/admissible.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/rng.hpp"

namespace m2hew::sim {
namespace {

constexpr double kL = 3.0;

TEST(BuildFrames, IdealClockFramesAreContiguous) {
  IdealClock clock(0.0);
  const auto frames = build_frames(clock, 1.5, kL, 4);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_DOUBLE_EQ(frames[0].start, 1.5);
  EXPECT_DOUBLE_EQ(frames[0].end, 4.5);
  EXPECT_DOUBLE_EQ(frames[0].slot_bounds[1], 2.5);
  for (std::size_t k = 1; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(frames[k].start, frames[k - 1].end);
  }
}

TEST(BuildFrames, DriftScalesRealLength) {
  ConstantDriftClock clock(-0.5, 0.0);  // slow clock: real frames 2x longer
  const auto frames = build_frames(clock, 0.0, kL, 2);
  EXPECT_DOUBLE_EQ(frames[0].end - frames[0].start, 6.0);
}

TEST(PairAligned, MatchesDefinition) {
  IdealClock a(0.0);
  const auto f = build_frames(a, 0.0, kL, 1);
  // Identical frames: every slot inside -> aligned.
  EXPECT_TRUE(pair_aligned(f[0], f[0]));
  // g shifted by half a slot still contains f's slots 2 and 3? g spans
  // [0.5, 3.5]: slot [1,2] fits -> aligned.
  IdealClock b(0.0);
  const auto g = build_frames(b, 0.5, kL, 1);
  EXPECT_TRUE(pair_aligned(f[0], g[0]));
  // g far away: not aligned, not overlapping.
  const auto far = build_frames(b, 10.0, kL, 1);
  EXPECT_FALSE(pair_aligned(f[0], far[0]));
  EXPECT_FALSE(frames_overlap(f[0], far[0]));
}

TEST(FramesOverlap, TouchingFramesDoNotOverlap) {
  IdealClock clock(0.0);
  const auto frames = build_frames(clock, 0.0, kL, 2);
  EXPECT_FALSE(frames_overlap(frames[0], frames[1]));
  EXPECT_TRUE(frames_overlap(frames[0], frames[0]));
}

class Lemma8Property
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(Lemma8Property, ConstructionIsAdmissibleAndDense) {
  const auto [delta, seed] = GetParam();
  constexpr std::size_t kFrames = 240;
  util::Rng rng(seed);

  auto make_clock = [&](std::uint64_t clock_seed) {
    return std::make_unique<PiecewiseDriftClock>(
        PiecewiseDriftClock::Config{.max_drift = delta,
                                    .min_segment = 4.0,
                                    .max_segment = 17.0,
                                    .offset = rng.uniform_double(-9.0, 9.0)},
        clock_seed);
  };
  const auto cv = make_clock(seed * 10 + 1);
  const auto cu = make_clock(seed * 10 + 2);
  const auto cw = make_clock(seed * 10 + 3);  // third party for property 4
  const double sv = rng.uniform_double(0.0, kL);
  const double su = rng.uniform_double(0.0, kL);
  const double sw = rng.uniform_double(0.0, kL);

  const auto v_frames = build_frames(*cv, sv, kL, kFrames);
  const auto u_frames = build_frames(*cu, su, kL, kFrames);
  const auto w_frames = build_frames(*cw, sw, kL, kFrames);

  const auto sigma = construct_admissible_sequence(v_frames, u_frames);

  // Lemma 8: at least M/6 pairs (finite-horizon edge effects cost at most
  // a couple of pairs; the bound below is the lemma's with a -1 guard).
  EXPECT_GE(sigma.size() + 1, kFrames / 6)
      << "delta=" << delta << " seed=" << seed;

  EXPECT_TRUE(verify_admissible_sequence(sigma, v_frames, u_frames,
                                         {v_frames, u_frames, w_frames}));
}

INSTANTIATE_TEST_SUITE_P(
    DriftSweep, Lemma8Property,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.1, 1.0 / 7.0),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(Lemma8, IdealAlignedClocksReachOneThirdDensity) {
  // With identical ideal clocks every consecutive pair is aligned, so γ
  // advances one frame at a time and σ keeps every third: density ≈ 1/3,
  // double the lemma's guaranteed 1/6.
  IdealClock a(0.0);
  IdealClock b(0.0);
  const auto v = build_frames(a, 0.0, kL, 120);
  const auto u = build_frames(b, 0.0, kL, 120);
  const auto sigma = construct_admissible_sequence(v, u);
  EXPECT_GE(sigma.size(), 39u);
  EXPECT_LE(sigma.size(), 41u);
  EXPECT_TRUE(verify_admissible_sequence(sigma, v, u, {v, u}));
}

TEST(VerifyAdmissible, RejectsBrokenSequences) {
  IdealClock a(0.0);
  IdealClock b(0.0);
  const auto v = build_frames(a, 0.0, kL, 30);
  const auto u = build_frames(b, 0.0, kL, 30);

  // Non-aligned pair.
  EXPECT_FALSE(verify_admissible_sequence({{0, 5}}, v, u, {v, u}));
  // Precedence violation (g index not increasing).
  EXPECT_FALSE(
      verify_admissible_sequence({{0, 3}, {4, 3}}, v, u, {v, u}));
  // Overlap-neighborhood violation: consecutive receiver frames g_1, g_2
  // are adjacent, and a frame of a slow third node (real frame length 6,
  // started at t=1 so its frames straddle the g_1/g_2 boundary) overlaps
  // both.
  ConstantDriftClock slow(-0.5, 0.0);
  const auto w = build_frames(slow, 1.0, kL, 30);
  EXPECT_FALSE(
      verify_admissible_sequence({{1, 1}, {2, 2}}, v, u, {v, u, w}));
  // The same sequence is fine when only fast timelines are present.
  EXPECT_TRUE(verify_admissible_sequence({{1, 1}, {2, 2}}, v, u, {v, u}));
  // Out-of-range index.
  EXPECT_FALSE(verify_admissible_sequence({{99, 0}}, v, u, {v, u}));
}

TEST(ConstructAdmissible, EmptyInputsYieldEmptySequence) {
  IdealClock clock(0.0);
  const auto frames = build_frames(clock, 0.0, kL, 10);
  EXPECT_TRUE(construct_admissible_sequence({}, frames).empty());
  EXPECT_TRUE(construct_admissible_sequence(frames, {}).empty());
}

}  // namespace
}  // namespace m2hew::sim
