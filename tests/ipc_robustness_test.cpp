// Robustness contracts of the worker IPC layer (util/ipc.hpp):
//   - write_all pushes arbitrarily large payloads through a pipe whose
//     capacity forces partial writes,
//   - a worker writing after the parent closed its read end sees EPIPE
//     (SIGPIPE ignored) and exits nonzero instead of dying silently,
//   - drain_workers' `interrupted` hook SIGTERMs live workers once and
//     still reaps every child.
#include "util/ipc.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

namespace m2hew::util {
namespace {

TEST(WriteAll, LargePayloadSurvivesPartialWrites) {
  // 4 MiB >> any pipe buffer: the single write_all call in the child must
  // loop over partial writes while the parent drains concurrently.
  constexpr std::size_t kLines = 1 << 16;
  const std::string payload(63, 'x');  // 64 bytes per line with '\n'

  std::vector<WorkerProcess> workers;
  workers.push_back(spawn_worker([&](int write_fd) {
    std::string bulk;
    bulk.reserve(kLines * (payload.size() + 1));
    for (std::size_t i = 0; i < kLines; ++i) {
      bulk += payload;
      bulk += '\n';
    }
    return write_all(write_fd, bulk) ? 0 : 1;
  }));

  std::size_t lines = 0;
  bool all_intact = true;
  drain_workers(workers, [&](std::size_t, std::string_view line) {
    ++lines;
    all_intact &= (line == payload);
  });
  EXPECT_EQ(lines, kLines);
  EXPECT_TRUE(all_intact);
  EXPECT_TRUE(workers[0].exited_cleanly);
}

TEST(WriteAll, EpipeReturnsFalseInsteadOfKillingWorker) {
  // The parent closes its read end immediately; the worker keeps writing
  // until the pipe buffer is exhausted and write(2) fails with EPIPE.
  // With SIGPIPE ignored in spawn_worker children, write_all returns
  // false and the worker exits through its own nonzero path — exactly the
  // missing-end-marker shape the sweep runner's recovery handles.
  WorkerProcess worker = spawn_worker([](int write_fd) {
    const std::string chunk(1 << 16, 'y');
    for (int i = 0; i < 1024; ++i) {
      if (!write_all(write_fd, chunk)) return 7;  // EPIPE lands here
    }
    return 0;
  });
  ASSERT_GE(worker.pid, 0);
  ASSERT_EQ(::close(worker.read_fd), 0);
  worker.read_fd = -1;
  worker.eof = true;

  int status = 0;
  ASSERT_EQ(::waitpid(worker.pid, &status, 0), worker.pid);
  ASSERT_TRUE(WIFEXITED(status)) << "worker was killed by a signal";
  EXPECT_EQ(WEXITSTATUS(status), 7);
}

TEST(DrainWorkers, InterruptedHookTerminatesAndReapsWorkers) {
  // Three workers each write one record then sleep "forever". Once every
  // record arrived the interrupted hook reports true, so each worker gets
  // SIGTERM (default disposition — spawn_worker resets it) and
  // drain_workers still reaps all of them.
  std::vector<WorkerProcess> workers;
  for (int w = 0; w < 3; ++w) {
    workers.push_back(spawn_worker([w](int write_fd) {
      const std::string line = "ready " + std::to_string(w) + "\n";
      if (!write_all(write_fd, line)) return 1;
      for (;;) ::pause();  // only a signal ends this worker
      return 0;
    }));
  }

  std::size_t lines = 0;
  drain_workers(
      workers, [&](std::size_t, std::string_view) { ++lines; },
      [&] { return lines == 3; });

  EXPECT_EQ(lines, 3u);
  for (const WorkerProcess& worker : workers) {
    EXPECT_TRUE(worker.eof);
    // SIGTERM death is not a clean exit — the caller's recovery notices.
    EXPECT_FALSE(worker.exited_cleanly);
    // Reaped: the pid no longer exists (or was recycled — ESRCH check is
    // inherently racy, so only assert waitpid has nothing left).
    EXPECT_EQ(::waitpid(worker.pid, nullptr, WNOHANG), -1);
  }
}

}  // namespace
}  // namespace m2hew::util
