#include "net/channel_set.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/rng.hpp"

namespace m2hew::net {
namespace {

TEST(ChannelSet, StartsEmpty) {
  const ChannelSet s(10);
  EXPECT_EQ(s.universe_size(), 10u);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  for (ChannelId c = 0; c < 10; ++c) EXPECT_FALSE(s.contains(c));
}

TEST(ChannelSet, InsertEraseContains) {
  ChannelSet s(100);
  s.insert(0);
  s.insert(63);
  s.insert(64);  // crosses the word boundary
  s.insert(99);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(99));
  EXPECT_FALSE(s.contains(50));

  s.erase(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.size(), 3u);

  // Idempotent operations.
  s.insert(0);
  EXPECT_EQ(s.size(), 3u);
  s.erase(63);
  EXPECT_EQ(s.size(), 3u);
  s.erase(200);  // outside universe: no-op
  EXPECT_EQ(s.size(), 3u);
}

TEST(ChannelSet, InitializerListAndFull) {
  const ChannelSet s(8, {1, 3, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(0));

  const ChannelSet f = ChannelSet::full(8);
  EXPECT_EQ(f.size(), 8u);
  for (ChannelId c = 0; c < 8; ++c) EXPECT_TRUE(f.contains(c));
}

TEST(ChannelSet, ClearEmptiesTheSet) {
  ChannelSet s(8, {1, 2, 3});
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(1));
}

TEST(ChannelSet, SetAlgebra) {
  const ChannelSet a(10, {1, 2, 3, 4});
  const ChannelSet b(10, {3, 4, 5, 6});
  const ChannelSet inter = a.intersect(b);
  EXPECT_EQ(inter, ChannelSet(10, {3, 4}));
  const ChannelSet uni = a.unite(b);
  EXPECT_EQ(uni, ChannelSet(10, {1, 2, 3, 4, 5, 6}));
  const ChannelSet diff = a.subtract(b);
  EXPECT_EQ(diff, ChannelSet(10, {1, 2}));
  EXPECT_EQ(a.intersection_size(b), 2u);
}

TEST(ChannelSet, AlgebraAcrossWordBoundary) {
  ChannelSet a(130);
  ChannelSet b(130);
  for (ChannelId c = 60; c < 70; ++c) a.insert(c);
  for (ChannelId c = 65; c < 130; ++c) b.insert(c);
  EXPECT_EQ(a.intersection_size(b), 5u);
  EXPECT_EQ(a.intersect(b).size(), 5u);
  EXPECT_EQ(a.unite(b).size(), 70u);
}

TEST(ChannelSet, NthSelectsInOrder) {
  const ChannelSet s(200, {5, 70, 130, 199});
  EXPECT_EQ(s.nth(0), 5u);
  EXPECT_EQ(s.nth(1), 70u);
  EXPECT_EQ(s.nth(2), 130u);
  EXPECT_EQ(s.nth(3), 199u);
}

TEST(ChannelSet, ToVectorSorted) {
  ChannelSet s(100);
  s.insert(99);
  s.insert(0);
  s.insert(64);
  EXPECT_EQ(s.to_vector(), (std::vector<ChannelId>{0, 64, 99}));
}

TEST(ChannelSet, SampleIsUniformOverMembers) {
  const ChannelSet s(50, {3, 17, 42});
  util::Rng rng(7);
  std::map<ChannelId, int> counts;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) ++counts[s.sample(rng)];
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [channel, count] : counts) {
    EXPECT_TRUE(s.contains(channel));
    EXPECT_NEAR(count, kDraws / 3.0, 400.0);
  }
}

TEST(ChannelSet, EqualityIncludesUniverse) {
  EXPECT_EQ(ChannelSet(8, {1}), ChannelSet(8, {1}));
  EXPECT_FALSE(ChannelSet(8, {1}) == ChannelSet(9, {1}));
  EXPECT_FALSE(ChannelSet(8, {1}) == ChannelSet(8, {2}));
}

TEST(ChannelSetDeath, InsertOutsideUniverseAborts) {
  ChannelSet s(4);
  EXPECT_DEATH(s.insert(4), "CHECK failed");
}

TEST(ChannelSetDeath, MismatchedUniverseAlgebraAborts) {
  const ChannelSet a(4, {1});
  const ChannelSet b(5, {1});
  EXPECT_DEATH((void)a.intersect(b), "CHECK failed");
}

TEST(ChannelSetDeath, SampleFromEmptyAborts) {
  const ChannelSet s(4);
  util::Rng rng(1);
  EXPECT_DEATH((void)s.sample(rng), "CHECK failed");
}

TEST(ChannelSetDeath, NthOutOfRangeAborts) {
  const ChannelSet s(4, {1});
  EXPECT_DEATH((void)s.nth(1), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::net
