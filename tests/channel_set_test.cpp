#include "net/channel_set.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace m2hew::net {
namespace {

TEST(ChannelSet, StartsEmpty) {
  const ChannelSet s(10);
  EXPECT_EQ(s.universe_size(), 10u);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  for (ChannelId c = 0; c < 10; ++c) EXPECT_FALSE(s.contains(c));
}

TEST(ChannelSet, InsertEraseContains) {
  ChannelSet s(100);
  s.insert(0);
  s.insert(63);
  s.insert(64);  // crosses the word boundary
  s.insert(99);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(99));
  EXPECT_FALSE(s.contains(50));

  s.erase(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.size(), 3u);

  // Idempotent operations.
  s.insert(0);
  EXPECT_EQ(s.size(), 3u);
  s.erase(63);
  EXPECT_EQ(s.size(), 3u);
  s.erase(200);  // outside universe: no-op
  EXPECT_EQ(s.size(), 3u);
}

TEST(ChannelSet, InitializerListAndFull) {
  const ChannelSet s(8, {1, 3, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(0));

  const ChannelSet f = ChannelSet::full(8);
  EXPECT_EQ(f.size(), 8u);
  for (ChannelId c = 0; c < 8; ++c) EXPECT_TRUE(f.contains(c));
}

TEST(ChannelSet, ClearEmptiesTheSet) {
  ChannelSet s(8, {1, 2, 3});
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(1));
}

TEST(ChannelSet, SetAlgebra) {
  const ChannelSet a(10, {1, 2, 3, 4});
  const ChannelSet b(10, {3, 4, 5, 6});
  const ChannelSet inter = a.intersect(b);
  EXPECT_EQ(inter, ChannelSet(10, {3, 4}));
  const ChannelSet uni = a.unite(b);
  EXPECT_EQ(uni, ChannelSet(10, {1, 2, 3, 4, 5, 6}));
  const ChannelSet diff = a.subtract(b);
  EXPECT_EQ(diff, ChannelSet(10, {1, 2}));
  EXPECT_EQ(a.intersection_size(b), 2u);
}

TEST(ChannelSet, AlgebraAcrossWordBoundary) {
  ChannelSet a(130);
  ChannelSet b(130);
  for (ChannelId c = 60; c < 70; ++c) a.insert(c);
  for (ChannelId c = 65; c < 130; ++c) b.insert(c);
  EXPECT_EQ(a.intersection_size(b), 5u);
  EXPECT_EQ(a.intersect(b).size(), 5u);
  EXPECT_EQ(a.unite(b).size(), 70u);
}

TEST(ChannelSet, NthSelectsInOrder) {
  const ChannelSet s(200, {5, 70, 130, 199});
  EXPECT_EQ(s.nth(0), 5u);
  EXPECT_EQ(s.nth(1), 70u);
  EXPECT_EQ(s.nth(2), 130u);
  EXPECT_EQ(s.nth(3), 199u);
}

TEST(ChannelSet, ToVectorSorted) {
  ChannelSet s(100);
  s.insert(99);
  s.insert(0);
  s.insert(64);
  EXPECT_EQ(s.to_vector(), (std::vector<ChannelId>{0, 64, 99}));
}

TEST(ChannelSet, SampleIsUniformOverMembers) {
  const ChannelSet s(50, {3, 17, 42});
  util::Rng rng(7);
  std::map<ChannelId, int> counts;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) ++counts[s.sample(rng)];
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [channel, count] : counts) {
    EXPECT_TRUE(s.contains(channel));
    EXPECT_NEAR(count, kDraws / 3.0, 400.0);
  }
}

TEST(ChannelSet, EqualityIncludesUniverse) {
  EXPECT_EQ(ChannelSet(8, {1}), ChannelSet(8, {1}));
  EXPECT_FALSE(ChannelSet(8, {1}) == ChannelSet(9, {1}));
  EXPECT_FALSE(ChannelSet(8, {1}) == ChannelSet(8, {2}));
}

TEST(ChannelSetDeath, InsertOutsideUniverseAborts) {
  ChannelSet s(4);
  EXPECT_DEATH(s.insert(4), "CHECK failed");
}

TEST(ChannelSet, MismatchedUniverseAlgebraThrows) {
  const ChannelSet a(4, {1});
  const ChannelSet b(5, {1});
  EXPECT_THROW((void)a.intersect(b), ChannelSetError);
  EXPECT_THROW((void)a.unite(b), ChannelSetError);
  EXPECT_THROW((void)a.subtract(b), ChannelSetError);
  ChannelSet c(4, {1});
  EXPECT_THROW(c.intersect_with(b), ChannelSetError);
  EXPECT_THROW(c.unite_with(b), ChannelSetError);
  EXPECT_THROW(c.subtract_with(b), ChannelSetError);
  // The failed operation must not corrupt the target.
  EXPECT_EQ(c, ChannelSet(4, {1}));
  try {
    (void)a.intersect(b);
    FAIL() << "expected ChannelSetError";
  } catch (const ChannelSetError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("intersect"), std::string::npos) << what;
    EXPECT_NE(what.find('4'), std::string::npos) << what;
    EXPECT_NE(what.find('5'), std::string::npos) << what;
  }
}

TEST(ChannelSet, InPlaceAlgebraMatchesAllocating) {
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const auto universe =
        static_cast<ChannelId>(1 + rng.uniform(300));
    ChannelSet a(universe);
    ChannelSet b(universe);
    for (ChannelId c = 0; c < universe; ++c) {
      if (rng.bernoulli(0.4)) a.insert(c);
      if (rng.bernoulli(0.4)) b.insert(c);
    }
    ChannelSet x = a;
    EXPECT_EQ(x.intersect_with(b), a.intersect(b));
    ChannelSet y = a;
    EXPECT_EQ(y.unite_with(b), a.unite(b));
    ChannelSet z = a;
    EXPECT_EQ(z.subtract_with(b), a.subtract(b));
    EXPECT_EQ(x.size(), a.intersection_size(b));
  }
}

TEST(ChannelSet, WordsExposeRawBitset) {
  ChannelSet s(130, {0, 63, 64, 129});
  const auto words = s.words();
  ASSERT_EQ(words.size(), ChannelSet::word_count(130));
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], (1ULL << 0) | (1ULL << 63));
  EXPECT_EQ(words[1], 1ULL << 0);
  EXPECT_EQ(words[2], 1ULL << 1);
}

TEST(ChannelSet, NthMatchesToVectorOnRandomSets) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const auto universe =
        static_cast<ChannelId>(64 + rng.uniform(1000));
    ChannelSet s(universe);
    for (ChannelId c = 0; c < universe; ++c) {
      if (rng.bernoulli(0.1)) s.insert(c);
    }
    const auto members = s.to_vector();
    ASSERT_EQ(members.size(), s.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      EXPECT_EQ(s.nth(k), members[k]);
    }
  }
}

// Chi-squared goodness-of-fit for sample() over a sparse set in a large
// universe — the configuration the word-skipping select actually
// exercises. 16 members, 200k draws; with 15 degrees of freedom the
// 99.9th percentile of chi² is 37.7, so the bound below gives a stable
// regression test that still catches a biased select.
TEST(ChannelSet, SampleChiSquaredUniformSparseLargeUniverse) {
  ChannelSet s(4096);
  std::vector<ChannelId> members;
  for (ChannelId c = 5; c < 4096; c += 257) {
    s.insert(c);
    members.push_back(c);
  }
  ASSERT_EQ(members.size(), 16u);

  util::Rng rng(0xB1A5);
  std::map<ChannelId, std::size_t> counts;
  constexpr std::size_t kDraws = 200000;
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[s.sample(rng)];
  ASSERT_EQ(counts.size(), members.size());

  const double expected =
      static_cast<double>(kDraws) / static_cast<double>(members.size());
  double chi2 = 0.0;
  for (const ChannelId c : members) {
    const double diff = static_cast<double>(counts[c]) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 37.7) << "sample() deviates from uniform";
}

TEST(ChannelSetDeath, SampleFromEmptyAborts) {
  const ChannelSet s(4);
  util::Rng rng(1);
  EXPECT_DEATH((void)s.sample(rng), "CHECK failed");
}

TEST(ChannelSetDeath, NthOutOfRangeAborts) {
  const ChannelSet s(4, {1});
  EXPECT_DEATH((void)s.nth(1), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::net
