// Scale guards: moderately large instances that finish fast today; an
// accidental O(n²)-per-slot or per-event regression in the engines makes
// them time out in CI.
#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "runner/scenario.hpp"
#include "sim/async_engine.hpp"
#include "sim/slot_engine.hpp"

namespace m2hew {
namespace {

TEST(Stress, SlotEngineRing512) {
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kRing;
  scenario.n = 512;
  scenario.channels = runner::ChannelKind::kHomogeneous;
  scenario.universe = 4;
  scenario.set_size = 4;
  const net::Network network = runner::build_scenario(scenario, 1);
  sim::SlotEngineConfig engine;
  engine.max_slots = 100000;
  engine.seed = 2;
  const auto result =
      sim::run_slot_engine(network, core::make_algorithm3(4), engine);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.state.covered_links(), 1024u);  // 512 edges x 2
}

TEST(Stress, SlotEngineDenseClique96) {
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kClique;
  scenario.n = 96;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 12;
  scenario.set_size = 6;
  const net::Network network = runner::build_scenario(scenario, 3);
  sim::SlotEngineConfig engine;
  engine.max_slots = 200000;
  engine.seed = 4;
  const auto result =
      sim::run_slot_engine(network, core::make_algorithm1(128), engine);
  ASSERT_TRUE(result.complete);
}

TEST(Stress, AsyncEngineUnitDisk48WithDrift) {
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kUnitDisk;
  scenario.n = 48;
  scenario.ud_radius = 0.3;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 10;
  scenario.set_size = 4;
  const net::Network network = runner::build_scenario(scenario, 5);
  sim::AsyncEngineConfig engine;
  engine.frame_length = 3.0;
  engine.max_real_time = 3e5;
  engine.seed = 6;
  engine.clock_builder = [](net::NodeId, std::uint64_t seed) {
    return std::make_unique<sim::PiecewiseDriftClock>(
        sim::PiecewiseDriftClock::Config{.max_drift = 1.0 / 7.0,
                                         .min_segment = 20.0,
                                         .max_segment = 80.0},
        seed);
  };
  const auto result =
      sim::run_async_engine(network, core::make_algorithm4(16), engine);
  ASSERT_TRUE(result.complete);
}

TEST(Stress, NetworkConstructionClique256) {
  // Derived-parameter computation (spans, Δ(u,c), ρ) on 32k arcs.
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kClique;
  scenario.n = 256;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 16;
  scenario.set_size = 8;
  const net::Network network = runner::build_scenario(scenario, 7);
  EXPECT_EQ(network.topology().arc_count(), 256u * 255u);
  EXPECT_GT(network.min_span_ratio(), 0.0);
  EXPECT_GE(network.max_channel_degree(), 1u);
}

}  // namespace
}  // namespace m2hew
