#include "core/baseline_universal.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace m2hew::core {
namespace {

TEST(UniversalBaseline, RoundRobinsOverUniverse) {
  const net::ChannelSet a = net::ChannelSet::full(4);
  UniversalBaselinePolicy policy(a, 4);
  util::Rng rng(1);
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (net::ChannelId c = 0; c < 4; ++c) {
      const auto action = policy.next_slot(rng);
      EXPECT_EQ(action.channel, c);
      EXPECT_NE(action.mode, sim::Mode::kQuiet);
    }
  }
}

TEST(UniversalBaseline, QuietOnUnavailableChannels) {
  const net::ChannelSet a(6, {1, 4});
  UniversalBaselinePolicy policy(a, 6);
  util::Rng rng(2);
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (net::ChannelId c = 0; c < 6; ++c) {
      const auto action = policy.next_slot(rng);
      if (c == 1 || c == 4) {
        EXPECT_NE(action.mode, sim::Mode::kQuiet);
        EXPECT_EQ(action.channel, c);
      } else {
        EXPECT_EQ(action.mode, sim::Mode::kQuiet);
      }
    }
  }
}

TEST(UniversalBaseline, TransmitRateMatchesP) {
  const net::ChannelSet a = net::ChannelSet::full(2);
  UniversalBaselinePolicy policy(a, 2, 0.3);
  util::Rng rng(3);
  int tx = 0;
  int active = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto action = policy.next_slot(rng);
    if (action.mode == sim::Mode::kQuiet) continue;
    ++active;
    if (action.mode == sim::Mode::kTransmit) ++tx;
  }
  ASSERT_GT(active, 0);
  EXPECT_NEAR(tx / static_cast<double>(active), 0.3, 0.01);
}

TEST(UniversalBaseline, SlotCountIndependentOfParticipation) {
  // Even a node with a single available channel advances the round-robin
  // every slot (the schedule is global).
  const net::ChannelSet a(8, {7});
  UniversalBaselinePolicy policy(a, 8);
  util::Rng rng(4);
  int active = 0;
  for (int i = 0; i < 80; ++i) {
    if (policy.next_slot(rng).mode != sim::Mode::kQuiet) ++active;
  }
  EXPECT_EQ(active, 10);  // exactly every 8th slot
}

TEST(UniversalBaselineDeath, InvalidProbabilityAborts) {
  const net::ChannelSet a(4, {0});
  EXPECT_DEATH(UniversalBaselinePolicy(a, 4, 0.0), "CHECK failed");
  EXPECT_DEATH(UniversalBaselinePolicy(a, 4, 1.0), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::core
