#include "core/transmit_probability.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace m2hew::core {
namespace {

TEST(Alg1SlotProbability, MatchesFormula) {
  // p = min(1/2, a / 2^i)
  EXPECT_DOUBLE_EQ(alg1_slot_probability(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(alg1_slot_probability(1, 2), 0.25);
  EXPECT_DOUBLE_EQ(alg1_slot_probability(4, 3), 0.5);
  EXPECT_DOUBLE_EQ(alg1_slot_probability(4, 4), 0.25);
  EXPECT_DOUBLE_EQ(alg1_slot_probability(4, 5), 0.125);
  EXPECT_DOUBLE_EQ(alg1_slot_probability(3, 10), 3.0 / 1024.0);
}

TEST(Alg1SlotProbability, CappedAtHalf) {
  for (unsigned i = 1; i <= 20; ++i) {
    EXPECT_LE(alg1_slot_probability(1000, i), 0.5);
  }
}

TEST(Alg1SlotProbability, HugeSlotIndexUnderflowsGracefully) {
  EXPECT_GE(alg1_slot_probability(8, 200), 0.0);
  EXPECT_LT(alg1_slot_probability(8, 200), 1e-30);
}

TEST(Alg3Probability, MatchesFormula) {
  EXPECT_DOUBLE_EQ(alg3_probability(4, 16), 0.25);
  EXPECT_DOUBLE_EQ(alg3_probability(16, 16), 0.5);  // capped
  EXPECT_DOUBLE_EQ(alg3_probability(1, 100), 0.01);
}

TEST(Alg4Probability, MatchesFormulaWithThreeSlots) {
  // p = min(1/2, a / (3·Δ_est))
  EXPECT_DOUBLE_EQ(alg4_probability(6, 4), 0.5);
  EXPECT_DOUBLE_EQ(alg4_probability(3, 4), 0.25);
  EXPECT_DOUBLE_EQ(alg4_probability(1, 10), 1.0 / 30.0);
}

TEST(Alg4Probability, SlotCountScalesDenominator) {
  EXPECT_DOUBLE_EQ(alg4_probability(4, 4, 2), 0.5);
  EXPECT_DOUBLE_EQ(alg4_probability(4, 4, 4), 0.25);
  EXPECT_DOUBLE_EQ(alg4_probability(4, 4, 8), 0.125);
}

TEST(StageLength, CeilLog2Values) {
  EXPECT_EQ(stage_length(1), 1u);
  EXPECT_EQ(stage_length(2), 1u);
  EXPECT_EQ(stage_length(3), 2u);
  EXPECT_EQ(stage_length(4), 2u);
  EXPECT_EQ(stage_length(5), 3u);
  EXPECT_EQ(stage_length(8), 3u);
  EXPECT_EQ(stage_length(9), 4u);
  EXPECT_EQ(stage_length(1024), 10u);
  EXPECT_EQ(stage_length(1025), 11u);
}

// Property sweep: the closed forms equal the direct min(...) expressions
// for a grid of (a, i / Δ_est) combinations.
class ProbabilityFormulaSweep
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProbabilityFormulaSweep, Alg1AgreesWithDirectFormula) {
  const std::size_t a = GetParam();
  for (unsigned i = 1; i <= 24; ++i) {
    const double direct =
        std::min(0.5, static_cast<double>(a) / std::pow(2.0, i));
    EXPECT_DOUBLE_EQ(alg1_slot_probability(a, i), direct);
  }
}

TEST_P(ProbabilityFormulaSweep, Alg3AndAlg4AgreeWithDirectFormula) {
  const std::size_t a = GetParam();
  for (std::size_t d : {1ul, 2ul, 3ul, 7ul, 16ul, 100ul, 1000ul}) {
    EXPECT_DOUBLE_EQ(
        alg3_probability(a, d),
        std::min(0.5, static_cast<double>(a) / static_cast<double>(d)));
    EXPECT_DOUBLE_EQ(alg4_probability(a, d),
                     std::min(0.5, static_cast<double>(a) /
                                       (3.0 * static_cast<double>(d))));
  }
}

INSTANTIATE_TEST_SUITE_P(AvailableSizes, ProbabilityFormulaSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 32, 257));

TEST(ProbabilityDeath, ZeroArgumentsAbort) {
  EXPECT_DEATH((void)alg1_slot_probability(0, 1), "CHECK failed");
  EXPECT_DEATH((void)alg1_slot_probability(1, 0), "CHECK failed");
  EXPECT_DEATH((void)alg3_probability(0, 1), "CHECK failed");
  EXPECT_DEATH((void)alg3_probability(1, 0), "CHECK failed");
  EXPECT_DEATH((void)alg4_probability(1, 1, 0), "CHECK failed");
  EXPECT_DEATH((void)stage_length(0), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::core
