#include "sim/energy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "net/topology_gen.hpp"
#include "sim/async_engine.hpp"
#include "sim/slot_engine.hpp"

namespace m2hew::sim {
namespace {

TEST(RadioActivity, TotalsAndEnergy) {
  RadioActivity a{10, 20, 70};
  EXPECT_EQ(a.total(), 100u);
  EXPECT_DOUBLE_EQ(a.energy(), 10.0 + 16.0 + 3.5);
  EXPECT_DOUBLE_EQ(a.energy(2.0, 1.0, 0.0), 40.0);
}

TEST(RadioActivity, TotalActivitySums) {
  const std::vector<RadioActivity> per_node{{1, 2, 3}, {10, 20, 30}};
  const RadioActivity sum = total_activity(per_node);
  EXPECT_EQ(sum.transmit, 11u);
  EXPECT_EQ(sum.receive, 22u);
  EXPECT_EQ(sum.quiet, 33u);
}

class ConstPolicy final : public SyncPolicy {
 public:
  explicit ConstPolicy(SlotAction action) : action_(action) {}
  SlotAction next_slot(util::Rng&) override { return action_; }

 private:
  SlotAction action_;
};

TEST(SlotEngineEnergy, ModesAreCounted) {
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(1, {0})));
  SlotEngineConfig config;
  config.max_slots = 10;
  config.stop_when_complete = false;
  const SyncPolicyFactory factory = [](const net::Network&, net::NodeId u)
      -> std::unique_ptr<SyncPolicy> {
    const SlotAction actions[] = {{Mode::kTransmit, 0},
                                  {Mode::kReceive, 0},
                                  {Mode::kQuiet, net::kInvalidChannel}};
    return std::make_unique<ConstPolicy>(actions[u]);
  };
  const auto result = run_slot_engine(network, factory, config);
  ASSERT_EQ(result.activity.size(), 3u);
  EXPECT_EQ(result.activity[0].transmit, 10u);
  EXPECT_EQ(result.activity[1].receive, 10u);
  EXPECT_EQ(result.activity[2].quiet, 10u);
}

TEST(SlotEngineEnergy, PreStartSlotsAreNotRadioActivity) {
  // A node that starts at slot 4 has no radio before then: nothing — not
  // even quiet slots — may be accounted, or idle energy (E13) is inflated
  // for late starters.
  net::Topology t(2);
  t.add_edge(0, 1);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(2, net::ChannelSet(1, {0})));
  SlotEngineConfig config;
  config.max_slots = 10;
  config.stop_when_complete = false;
  config.starts = {4, 0};
  const SyncPolicyFactory factory = [](const net::Network&, net::NodeId)
      -> std::unique_ptr<SyncPolicy> {
    return std::make_unique<ConstPolicy>(SlotAction{Mode::kReceive, 0});
  };
  const auto result = run_slot_engine(network, factory, config);
  EXPECT_EQ(result.activity[0].quiet, 0u);
  EXPECT_EQ(result.activity[0].receive, 6u);
  EXPECT_EQ(result.activity[0].total(), 6u);
  EXPECT_EQ(result.activity[1].receive, 10u);
}

TEST(SlotEngineEnergy, VariableStartActivityTotalsMatchActiveSpans) {
  // Mixed modes and staggered starts: each node's accounted activity is
  // exactly the slots from its start to the budget, no more and no less.
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(1, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(1, {0})));
  SlotEngineConfig config;
  config.max_slots = 12;
  config.stop_when_complete = false;
  config.starts = {0, 5, 11};
  const SyncPolicyFactory factory = [](const net::Network&, net::NodeId u)
      -> std::unique_ptr<SyncPolicy> {
    const SlotAction actions[] = {{Mode::kTransmit, 0},
                                  {Mode::kReceive, 0},
                                  {Mode::kQuiet, net::kInvalidChannel}};
    return std::make_unique<ConstPolicy>(actions[u]);
  };
  const auto result = run_slot_engine(network, factory, config);
  ASSERT_EQ(result.slots_executed, 12u);
  for (net::NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(result.activity[u].total(),
              result.slots_executed - config.starts[u])
        << "node " << u;
  }
  EXPECT_EQ(result.activity[0].transmit, 12u);
  EXPECT_EQ(result.activity[1].receive, 7u);
  EXPECT_EQ(result.activity[2].quiet, 1u);
}

class ConstFramePolicy final : public AsyncPolicy {
 public:
  explicit ConstFramePolicy(FrameAction action) : action_(action) {}
  FrameAction next_frame(util::Rng&) override { return action_; }

 private:
  FrameAction action_;
};

TEST(AsyncEngineEnergy, FramesAreCounted) {
  net::Topology t(2);
  t.add_edge(0, 1);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(2, net::ChannelSet(1, {0})));
  AsyncEngineConfig config;
  config.frame_length = 1.0;
  config.max_frames_per_node = 8;
  config.max_real_time = 1e6;
  config.stop_when_complete = false;
  const AsyncPolicyFactory factory = [](const net::Network&, net::NodeId u)
      -> std::unique_ptr<AsyncPolicy> {
    return std::make_unique<ConstFramePolicy>(
        u == 0 ? FrameAction{Mode::kTransmit, 0}
               : FrameAction{Mode::kReceive, 0});
  };
  const auto result = run_async_engine(network, factory, config);
  ASSERT_EQ(result.activity.size(), 2u);
  EXPECT_EQ(result.activity[0].transmit, 8u);
  EXPECT_EQ(result.activity[0].receive, 0u);
  EXPECT_EQ(result.activity[1].receive, 8u);
}

TEST(AlgorithmEnergy, Algorithm4TransmitsLessOftenThanAlgorithm3) {
  // Alg 4's per-frame transmit probability has an extra factor 3 in the
  // denominator, so its duty cycle is lower for the same Δ_est.
  const net::Network network(
      net::make_clique(4),
      std::vector<net::ChannelSet>(4, net::ChannelSet(2, {0, 1})));

  SlotEngineConfig sync_config;
  sync_config.max_slots = 3000;
  sync_config.stop_when_complete = false;
  const auto sync_result = run_slot_engine(
      network, core::make_algorithm3(12), sync_config);
  const RadioActivity sync_total = total_activity(sync_result.activity);

  AsyncEngineConfig async_config;
  async_config.frame_length = 3.0;
  async_config.max_frames_per_node = 3000;
  async_config.max_real_time = 1e9;
  async_config.stop_when_complete = false;
  const auto async_result = run_async_engine(
      network, core::make_algorithm4(12), async_config);
  const RadioActivity async_total = total_activity(async_result.activity);

  const double sync_duty = static_cast<double>(sync_total.transmit) /
                           static_cast<double>(sync_total.total());
  const double async_duty = static_cast<double>(async_total.transmit) /
                            static_cast<double>(async_total.total());
  // p3 = min(1/2, 2/12) = 1/6; p4 = min(1/2, 2/36) = 1/18.
  EXPECT_NEAR(sync_duty, 1.0 / 6.0, 0.02);
  EXPECT_NEAR(async_duty, 1.0 / 18.0, 0.02);
}

}  // namespace
}  // namespace m2hew::sim
