// Dynamic primary-user interference in the asynchronous engine: slot-level
// transmitter vacating and receiver jamming, with ideal clocks so every
// interval is exact.
#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms.hpp"
#include "net/primary_user.hpp"
#include "net/topology_gen.hpp"
#include "sim/async_engine.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

class FixedFramePolicy final : public sim::AsyncPolicy {
 public:
  explicit FixedFramePolicy(sim::FrameAction action) : action_(action) {}
  sim::FrameAction next_frame(util::Rng&) override { return action_; }

 private:
  sim::FrameAction action_;
};

[[nodiscard]] sim::AsyncPolicyFactory fixed(
    std::vector<sim::FrameAction> per_node) {
  auto shared =
      std::make_shared<std::vector<sim::FrameAction>>(std::move(per_node));
  return [shared](const net::Network&, net::NodeId u)
             -> std::unique_ptr<sim::AsyncPolicy> {
    return std::make_unique<FixedFramePolicy>((*shared)[u]);
  };
}

[[nodiscard]] net::Network pair_net() {
  net::Topology t(2);
  t.add_edge(0, 1);
  return net::Network(std::move(t), std::vector<net::ChannelSet>(
                                        2, net::ChannelSet(2, {0, 1})));
}

constexpr sim::FrameAction kTx0{sim::Mode::kTransmit, 0};
constexpr sim::FrameAction kRx0{sim::Mode::kReceive, 0};

TEST(AsyncInterference, FullyJammedReceiverHearsNothing) {
  const net::Network network = pair_net();
  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 30.0;
  config.stop_when_complete = false;
  config.max_frames_per_node = 8;
  config.interference = [](double, net::NodeId node, net::ChannelId c) {
    return node == 1 && c == 0;
  };
  const auto result =
      sim::run_async_engine(network, fixed({kTx0, kRx0}), config);
  EXPECT_EQ(result.state.covered_links(), 0u);
}

TEST(AsyncInterference, FullyJammedTransmitterVacates) {
  const net::Network network = pair_net();
  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 30.0;
  config.stop_when_complete = false;
  config.max_frames_per_node = 8;
  config.interference = [](double, net::NodeId node, net::ChannelId c) {
    return node == 0 && c == 0;
  };
  const auto result =
      sim::run_async_engine(network, fixed({kTx0, kRx0}), config);
  EXPECT_EQ(result.state.covered_links(), 0u);
}

TEST(AsyncInterference, PartialJamLeavesOtherSlotsUsable) {
  // PU active at node 1 (the listener) only during [0, 1.5): the first
  // slot [0,1] of node 0's transmit frame is drowned, the second [1,2]
  // straddles (midpoint 1.5 -> not jammed), delivery via slot 2 or 3.
  const net::Network network = pair_net();
  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 3.5;
  config.stop_when_complete = false;
  config.interference = [](double t, net::NodeId node, net::ChannelId c) {
    return node == 1 && c == 0 && t < 1.5;
  };
  const auto result =
      sim::run_async_engine(network, fixed({kTx0, kRx0}), config);
  ASSERT_TRUE(result.state.is_covered({0, 1}));
  // Slot [1,2] has midpoint exactly 1.5 (not < 1.5): it is the first
  // clear slot, so coverage lands at its end.
  EXPECT_DOUBLE_EQ(result.state.first_coverage_time({0, 1}), 2.0);
}

TEST(AsyncInterference, NarrowBurstAtSlotStartDoesNotSuppress) {
  // Regression: transmitter-side suppression used to sample the slot
  // *start* while the listener sampled the *midpoint*, so one narrow PU
  // burst could make the two sides of a link disagree. Both now sample
  // the midpoint: a burst over [0, 0.2) at the transmitter leaves slot
  // [0,1]'s midpoint clear, so the very first slot is transmitted and
  // heard (the old start sample would have vacated it and pushed
  // delivery to 2.0).
  const net::Network network = pair_net();
  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 3.5;
  config.stop_when_complete = false;
  config.interference = [](double t, net::NodeId node, net::ChannelId c) {
    return node == 0 && c == 0 && t < 0.2;
  };
  const auto result =
      sim::run_async_engine(network, fixed({kTx0, kRx0}), config);
  ASSERT_TRUE(result.state.is_covered({0, 1}));
  EXPECT_DOUBLE_EQ(result.state.first_coverage_time({0, 1}), 1.0);
}

TEST(AsyncInterference, MidSlotBurstSuppressesTransmitterAndListenerAlike) {
  // A burst covering slot [0,1]'s midpoint — whether observed at the
  // transmitter or the listener — kills exactly that slot on both sides;
  // delivery lands via the untouched slot [1,2].
  const net::Network network = pair_net();
  for (const net::NodeId jammed : {net::NodeId{0}, net::NodeId{1}}) {
    sim::AsyncEngineConfig config;
    config.frame_length = 3.0;
    config.max_real_time = 3.5;
    config.stop_when_complete = false;
    config.interference = [jammed](double t, net::NodeId node,
                                   net::ChannelId c) {
      return node == jammed && c == 0 && t >= 0.4 && t < 0.6;
    };
    const auto result =
        sim::run_async_engine(network, fixed({kTx0, kRx0}), config);
    ASSERT_TRUE(result.state.is_covered({0, 1})) << "jammed " << jammed;
    EXPECT_DOUBLE_EQ(result.state.first_coverage_time({0, 1}), 2.0)
        << "jammed " << jammed;
  }
}

TEST(AsyncInterference, JammedInterfererDoesNotCollide) {
  // Star: node 1 transmits cleanly; node 2 would collide but its
  // transmissions are suppressed by a PU at node 2 on channel 0.
  net::Topology t(3);
  t.add_edge(0, 1);
  t.add_edge(0, 2);
  const net::Network network(
      std::move(t),
      std::vector<net::ChannelSet>(3, net::ChannelSet(1, {0})));
  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 3.5;
  config.stop_when_complete = false;
  config.interference = [](double, net::NodeId node, net::ChannelId) {
    return node == 2;
  };
  const auto result =
      sim::run_async_engine(network, fixed({kRx0, kTx0, kTx0}), config);
  EXPECT_TRUE(result.state.is_covered({1, 0}));
  EXPECT_FALSE(result.state.is_covered({2, 0}));
}

TEST(AsyncInterference, WithoutScheduleBehaviourUnchanged) {
  // Null interference must reproduce the plain engine bit-for-bit.
  const net::Network network = pair_net();
  sim::AsyncEngineConfig plain;
  plain.frame_length = 3.0;
  plain.max_real_time = 200.0;
  plain.seed = 7;
  const auto a =
      sim::run_async_engine(network, core::make_algorithm4(4), plain);
  sim::AsyncEngineConfig with_null = plain;
  with_null.interference = [](double, net::NodeId, net::ChannelId) {
    return false;
  };
  const auto b =
      sim::run_async_engine(network, core::make_algorithm4(4), with_null);
  ASSERT_EQ(a.complete, b.complete);
  if (a.complete) {
    EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  }
}

TEST(AsyncInterference, DiscoveryCompletesUnderDynamicPUs) {
  util::Rng rng(5);
  const auto geo = net::make_connected_unit_disk(8, 1.0, 0.55, rng);
  const net::Network network(
      geo.topology,
      std::vector<net::ChannelSet>(8, net::ChannelSet::full(5)));
  const auto field = net::DynamicPrimaryUserField::random(
      5, 6, 1.0, 0.2, 0.4, /*period=*/120, /*duty=*/0.4, rng);
  // The PU field is slot-indexed; map real time through the frame length.
  const auto slot_schedule = field.interference_for(geo.positions);
  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.max_real_time = 1e6;
  config.seed = 6;
  config.interference = [slot_schedule](double time, net::NodeId node,
                                        net::ChannelId channel) {
    return slot_schedule(static_cast<std::uint64_t>(time), node, channel);
  };
  const auto result =
      sim::run_async_engine(network, core::make_algorithm4(6), config);
  ASSERT_TRUE(result.complete);
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    EXPECT_TRUE(result.state.table_matches_ground_truth(u));
  }
}

}  // namespace
}  // namespace m2hew
