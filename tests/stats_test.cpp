#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace m2hew::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 0.0);
  EXPECT_EQ(rs.max(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squared deviations = 32.
  EXPECT_DOUBLE_EQ(rs.variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.mean(), 3.5);
  EXPECT_EQ(rs.min(), 3.5);
  EXPECT_EQ(rs.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double(-10.0, 10.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(QuantileSorted, ExactAndInterpolated) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0 / 3.0), 2.0);
}

TEST(QuantileSorted, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 7.0);
}

TEST(QuantileSorted, EmptyIsZeroLikeSummary) {
  // quantile() on no samples must agree with the zero-valued p50/p90/p95/
  // p99 fields summarize() reports for an empty input, instead of dying.
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 1.0), 0.0);
  const Samples none;
  EXPECT_DOUBLE_EQ(none.quantile(0.99), 0.0);
  const Summary s = none.summarize();
  EXPECT_DOUBLE_EQ(none.quantile(0.5), s.p50);
  EXPECT_DOUBLE_EQ(none.quantile(0.99), s.p99);
}

TEST(QuantileSorted, MatchesSummaryFieldsOnRandomSamples) {
  Rng rng(42);
  Samples samples;
  for (int i = 0; i < 257; ++i) samples.add(rng.uniform_double(-5.0, 5.0));
  const Summary s = samples.summarize();
  EXPECT_DOUBLE_EQ(samples.quantile(0.50), s.p50);
  EXPECT_DOUBLE_EQ(samples.quantile(0.90), s.p90);
  EXPECT_DOUBLE_EQ(samples.quantile(0.95), s.p95);
  EXPECT_DOUBLE_EQ(samples.quantile(0.99), s.p99);
  EXPECT_DOUBLE_EQ(samples.quantile(0.0), s.min);
  EXPECT_DOUBLE_EQ(samples.quantile(1.0), s.max);
}

TEST(QuantileSorted, TwoElements) {
  const std::vector<double> v{1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 1.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 3.0);
}

TEST(Summarize, KnownVector) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Samples, QuantileAndSummary) {
  Samples samples;
  for (const double x : {5.0, 1.0, 3.0}) samples.add(x);
  EXPECT_EQ(samples.count(), 3u);
  EXPECT_DOUBLE_EQ(samples.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(samples.summarize().mean, 3.0);
  samples.clear();
  EXPECT_EQ(samples.count(), 0u);
}

TEST(Samples, MergePreservesShardOrder) {
  // Shard-ordered merge is what makes the parallel trial reduction
  // deterministic: merging [a] then [b] must equal adding a's values then
  // b's, element for element.
  Samples whole;
  Samples left;
  Samples right;
  for (const double x : {2.0, 4.0, 6.0}) {
    whole.add(x);
    left.add(x);
  }
  for (const double x : {1.0, 3.0}) {
    whole.add(x);
    right.add(x);
  }
  left.merge(right);
  ASSERT_EQ(left.count(), whole.count());
  for (std::size_t i = 0; i < whole.count(); ++i) {
    EXPECT_EQ(left.values()[i], whole.values()[i]);
  }
}

TEST(Samples, MergeWithEmptyIsNoOp) {
  Samples a;
  a.add(1.0);
  Samples empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.values()[0], 1.0);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const Interval iv = wilson_interval(30, 100);
  EXPECT_LT(iv.lo, 0.3);
  EXPECT_GT(iv.hi, 0.3);
  EXPECT_GE(iv.lo, 0.0);
  EXPECT_LE(iv.hi, 1.0);
}

TEST(WilsonInterval, ShrinksWithSamples) {
  const Interval small = wilson_interval(5, 10);
  const Interval large = wilson_interval(500, 1000);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(WilsonInterval, EdgeCases) {
  const Interval zero = wilson_interval(0, 10);
  EXPECT_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const Interval all = wilson_interval(10, 10);
  EXPECT_LT(all.lo, 1.0);
  EXPECT_EQ(all.hi, 1.0);
  const Interval none = wilson_interval(0, 0);
  EXPECT_EQ(none.lo, 0.0);
  EXPECT_EQ(none.hi, 1.0);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, FlatLine) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, 4.0, 4.0};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
}

TEST(LinearFit, NoisyDataHasLowerR2) {
  Rng rng(2);
  std::vector<double> x;
  std::vector<double> noisy;
  for (int i = 0; i < 200; ++i) {
    x.push_back(static_cast<double>(i));
    noisy.push_back(static_cast<double>(i) +
                    rng.uniform_double(-50.0, 50.0));
  }
  const LinearFit fit = linear_fit(x, noisy);
  EXPECT_GT(fit.r2, 0.5);  // trend still visible
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_NEAR(fit.slope, 1.0, 0.2);
}

}  // namespace
}  // namespace m2hew::util
