#include "net/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "net/channel_assign.hpp"
#include "net/propagation.hpp"
#include "net/topology_gen.hpp"
#include "runner/scenario.hpp"
#include "util/rng.hpp"

namespace m2hew::net {
namespace {

void expect_networks_equal(const Network& a, const Network& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.universe_size(), b.universe_size());
  ASSERT_EQ(a.topology().arc_count(), b.topology().arc_count());
  const auto arcs_a = a.topology().arcs();
  const auto arcs_b = b.topology().arcs();
  for (std::size_t i = 0; i < arcs_a.size(); ++i) {
    EXPECT_EQ(arcs_a[i], arcs_b[i]);
  }
  for (NodeId u = 0; u < a.node_count(); ++u) {
    EXPECT_EQ(a.available(u), b.available(u));
  }
  for (const auto& [from, to] : arcs_a) {
    EXPECT_EQ(a.span(from, to), b.span(from, to));
  }
  EXPECT_EQ(a.max_channel_set_size(), b.max_channel_set_size());
  EXPECT_EQ(a.max_channel_degree(), b.max_channel_degree());
  EXPECT_DOUBLE_EQ(a.min_span_ratio(), b.min_span_ratio());
  EXPECT_EQ(a.links().size(), b.links().size());
}

TEST(Serialize, RoundTripSymmetric) {
  util::Rng rng(1);
  const Network original(
      make_clique(5),
      uniform_random_assignment(5, 8, 3, rng));
  std::stringstream stream;
  write_network(stream, original);
  const Network loaded = read_network(stream);
  expect_networks_equal(original, loaded);
}

TEST(Serialize, RoundTripAsymmetric) {
  util::Rng rng(2);
  Topology t = make_asymmetric(make_clique(6), 0.6, rng);
  const Network original(std::move(t),
                         uniform_random_assignment(6, 6, 3, rng));
  std::stringstream stream;
  write_network(stream, original);
  const Network loaded = read_network(stream);
  expect_networks_equal(original, loaded);
}

TEST(Serialize, RoundTripWithPropagationMasks) {
  util::Rng rng(3);
  const Network original(make_clique(5),
                         uniform_random_assignment(5, 8, 4, rng),
                         random_propagation_filter(8, 0.5, 7));
  std::stringstream stream;
  write_network(stream, original);
  const Network loaded = read_network(stream);
  expect_networks_equal(original, loaded);
}

TEST(Serialize, CommentsAreIgnored) {
  const Network original(make_line(2),
                         {ChannelSet(2, {0}), ChannelSet(2, {0, 1})});
  std::stringstream stream;
  stream << "# leading comment\n";
  write_network(stream, original);
  const Network loaded = read_network(stream);
  expect_networks_equal(original, loaded);
}

TEST(Serialize, FileRoundTrip) {
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kUnitDisk;
  scenario.n = 10;
  scenario.ud_radius = 0.5;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 9;
  scenario.set_size = 4;
  const Network original = runner::build_scenario(scenario, 5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "m2hew_net_test.txt")
          .string();
  save_network_file(path, original);
  const Network loaded = load_network_file(path);
  expect_networks_equal(original, loaded);
  std::filesystem::remove(path);
}

TEST(Serialize, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_network_file("/nonexistent/nowhere.txt"),
               std::runtime_error);
}

// Malformed input is a recoverable error: read_network throws
// std::runtime_error (with a line number), never CHECK-aborts, so tools
// can reject a bad --load-network file with a diagnostic.
TEST(SerializeErrors, BadMagicThrows) {
  std::stringstream stream("not-a-network\n");
  EXPECT_THROW((void)read_network(stream), std::runtime_error);
}

TEST(SerializeErrors, MissingAvailThrows) {
  std::stringstream stream("m2hew-network v1\nnodes 2 universe 2\n");
  EXPECT_THROW((void)read_network(stream), std::runtime_error);
}

TEST(SerializeErrors, UnknownRecordThrows) {
  std::stringstream stream(
      "m2hew-network v1\nnodes 1 universe 1\navail 0 0\nbogus 1\n");
  EXPECT_THROW((void)read_network(stream), std::runtime_error);
}

TEST(SerializeErrors, OutOfRangeEndpointsAndChannelsThrow) {
  for (const char* body : {
           "arc 0 9\navail 0 0\navail 1 0\n",      // arc endpoint >= n
           "arc 0 0\navail 0 0\navail 1 0\n",      // self-loop
           "arc 0 1\narc 0 1\navail 0 0\navail 1 0\n",  // duplicate arc
           "arc 0 1\navail 0 7\navail 1 0\n",      // channel >= universe
           "arc 0 1\navail 0 0\navail 1 0\nspan 0 1 9\n",  // span channel
           "arc 0 1\navail 0\navail 1 0\n",        // empty available set
           "arc 0 1\navail 0 0\navail 1 0\nspan 1 0 0\n",  // span, no arc
       }) {
    std::stringstream stream(std::string("m2hew-network v1\n"
                                         "nodes 2 universe 2\n") +
                             body);
    EXPECT_THROW((void)read_network(stream), std::runtime_error) << body;
  }
}

TEST(SerializeErrors, MessageCarriesLineNumber) {
  std::stringstream stream(
      "m2hew-network v1\nnodes 1 universe 1\navail 0 0\nbogus 1\n");
  try {
    (void)read_network(stream);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

// Fuzz-ish property tests: any serialized network round-trips exactly, and
// no truncation or byte corruption of a valid file can do worse than throw.
// (A CHECK-abort would kill this test binary, so passing proves the parser
// stays in the recoverable-error regime.)
TEST(SerializeFuzz, RoundTripRandomNetworks) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed);
    const auto n = static_cast<NodeId>(3 + rng.uniform(10));
    Topology topology = make_erdos_renyi(n, 0.5, rng);
    if (seed % 2 == 0) topology = make_asymmetric(topology, 0.3, rng);
    auto assignment = uniform_random_assignment(n, 6, 3, rng);
    const Network original =
        seed % 3 == 0
            ? Network(std::move(topology), std::move(assignment),
                      random_propagation_filter(6, 0.6, seed))
            : Network(std::move(topology), std::move(assignment));
    std::stringstream stream;
    write_network(stream, original);
    const Network loaded = read_network(stream);
    expect_networks_equal(original, loaded);
  }
}

[[nodiscard]] std::string serialized_fixture() {
  util::Rng rng(42);
  const Network network(make_clique(6),
                        uniform_random_assignment(6, 5, 3, rng));
  std::stringstream stream;
  write_network(stream, network);
  return stream.str();
}

TEST(SerializeFuzz, EveryTruncationThrowsOrParses) {
  const std::string text = serialized_fixture();
  for (std::size_t len = 0; len < text.size(); len += 3) {
    std::stringstream stream(text.substr(0, len));
    try {
      (void)read_network(stream);
    } catch (const std::runtime_error&) {
      // Expected for most prefixes; the point is no abort and no UB.
    }
  }
}

TEST(SerializeFuzz, RandomByteCorruptionThrowsOrParses) {
  const std::string text = serialized_fixture();
  // Keep the header intact (corrupting the node count just changes the
  // instance size); everything after it is fair game.
  const std::size_t body_start = text.find('\n', text.find('\n') + 1) + 1;
  util::Rng rng(7);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = text;
    const int edits = 1 + static_cast<int>(rng.uniform(3));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos =
          body_start + static_cast<std::size_t>(
                           rng.uniform(corrupted.size() - body_start));
      corrupted[pos] = static_cast<char>(' ' + rng.uniform(95));
    }
    std::stringstream stream(corrupted);
    try {
      (void)read_network(stream);
    } catch (const std::runtime_error&) {
      // Graceful failure is the contract.
    }
  }
}

}  // namespace
}  // namespace m2hew::net
