#include "net/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "net/channel_assign.hpp"
#include "net/propagation.hpp"
#include "net/topology_gen.hpp"
#include "runner/scenario.hpp"
#include "util/rng.hpp"

namespace m2hew::net {
namespace {

void expect_networks_equal(const Network& a, const Network& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.universe_size(), b.universe_size());
  ASSERT_EQ(a.topology().arc_count(), b.topology().arc_count());
  const auto arcs_a = a.topology().arcs();
  const auto arcs_b = b.topology().arcs();
  for (std::size_t i = 0; i < arcs_a.size(); ++i) {
    EXPECT_EQ(arcs_a[i], arcs_b[i]);
  }
  for (NodeId u = 0; u < a.node_count(); ++u) {
    EXPECT_EQ(a.available(u), b.available(u));
  }
  for (const auto& [from, to] : arcs_a) {
    EXPECT_EQ(a.span(from, to), b.span(from, to));
  }
  EXPECT_EQ(a.max_channel_set_size(), b.max_channel_set_size());
  EXPECT_EQ(a.max_channel_degree(), b.max_channel_degree());
  EXPECT_DOUBLE_EQ(a.min_span_ratio(), b.min_span_ratio());
  EXPECT_EQ(a.links().size(), b.links().size());
}

TEST(Serialize, RoundTripSymmetric) {
  util::Rng rng(1);
  const Network original(
      make_clique(5),
      uniform_random_assignment(5, 8, 3, rng));
  std::stringstream stream;
  write_network(stream, original);
  const Network loaded = read_network(stream);
  expect_networks_equal(original, loaded);
}

TEST(Serialize, RoundTripAsymmetric) {
  util::Rng rng(2);
  Topology t = make_asymmetric(make_clique(6), 0.6, rng);
  const Network original(std::move(t),
                         uniform_random_assignment(6, 6, 3, rng));
  std::stringstream stream;
  write_network(stream, original);
  const Network loaded = read_network(stream);
  expect_networks_equal(original, loaded);
}

TEST(Serialize, RoundTripWithPropagationMasks) {
  util::Rng rng(3);
  const Network original(make_clique(5),
                         uniform_random_assignment(5, 8, 4, rng),
                         random_propagation_filter(8, 0.5, 7));
  std::stringstream stream;
  write_network(stream, original);
  const Network loaded = read_network(stream);
  expect_networks_equal(original, loaded);
}

TEST(Serialize, CommentsAreIgnored) {
  const Network original(make_line(2),
                         {ChannelSet(2, {0}), ChannelSet(2, {0, 1})});
  std::stringstream stream;
  stream << "# leading comment\n";
  write_network(stream, original);
  const Network loaded = read_network(stream);
  expect_networks_equal(original, loaded);
}

TEST(Serialize, FileRoundTrip) {
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kUnitDisk;
  scenario.n = 10;
  scenario.ud_radius = 0.5;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 9;
  scenario.set_size = 4;
  const Network original = runner::build_scenario(scenario, 5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "m2hew_net_test.txt")
          .string();
  save_network_file(path, original);
  const Network loaded = load_network_file(path);
  expect_networks_equal(original, loaded);
  std::filesystem::remove(path);
}

TEST(Serialize, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_network_file("/nonexistent/nowhere.txt"),
               std::runtime_error);
}

TEST(SerializeDeath, BadMagicAborts) {
  std::stringstream stream("not-a-network\n");
  EXPECT_DEATH((void)read_network(stream), "CHECK failed");
}

TEST(SerializeDeath, MissingAvailAborts) {
  std::stringstream stream("m2hew-network v1\nnodes 2 universe 2\n");
  EXPECT_DEATH((void)read_network(stream), "CHECK failed");
}

TEST(SerializeDeath, UnknownRecordAborts) {
  std::stringstream stream(
      "m2hew-network v1\nnodes 1 universe 1\navail 0 0\nbogus 1\n");
  EXPECT_DEATH((void)read_network(stream), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::net
