// Tests for the fault-injection layer (sim/fault_plan.*): churn-schedule
// determinism and boundaries, the inertness guarantee of a disabled plan,
// Gilbert–Elliott loss behaviour, scheduled spectrum faults, robustness
// reporting, and serial-vs-parallel bit-identity of faulted trial runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/algorithms.hpp"
#include "core/trust.hpp"
#include "net/channel_assign.hpp"
#include "net/topology_gen.hpp"
#include "runner/trials.hpp"
#include "sim/fault_plan.hpp"
#include "sim/slot_engine.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

// Soak runs (ci.yml) export M2HEW_SOAK_SEED to shift every seed in this
// file, widening coverage across scheduled runs without code changes.
[[nodiscard]] std::uint64_t soak_offset() {
  const char* env = std::getenv("M2HEW_SOAK_SEED");
  return env == nullptr ? 0 : std::strtoull(env, nullptr, 10);
}

[[nodiscard]] net::Network small_clique(net::NodeId n = 6,
                                        net::ChannelId universe = 4) {
  return net::Network(
      net::make_clique(n),
      std::vector<net::ChannelSet>(n, net::ChannelSet::full(universe)));
}

[[nodiscard]] sim::SlotFaultPlan churn_plan(double p = 1.0) {
  sim::SlotFaultPlan plan;
  plan.churn.crash_probability = p;
  plan.churn.earliest_crash = 10;
  plan.churn.latest_crash = 60;
  plan.churn.min_down = 20;
  plan.churn.max_down = 80;
  plan.churn.reset_policy_on_recovery = true;
  return plan;
}

/// Trust knobs hot enough to catch a 0.8–0.9-tx Byzantine on a small
/// clique within a few thousand slots, while leaving the (slower) honest
/// senders mostly untouched.
[[nodiscard]] core::TrustConfig aggressive_trust() {
  core::TrustConfig trust;
  trust.enabled = true;
  trust.threshold = 0.3;
  trust.rate_penalty = 0.4;
  trust.rate_window = 64;
  trust.max_per_window = 8;
  trust.block_slots = 100'000;  // outlives the run: no probation churn
  trust.entry_window = 200'000;
  return trust;
}

void expect_identical_results(const sim::SlotEngineResult& a,
                              const sim::SlotEngineResult& b) {
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.completion_slot, b.completion_slot);
  EXPECT_EQ(a.slots_executed, b.slots_executed);
  EXPECT_EQ(a.state.covered_links(), b.state.covered_links());
  EXPECT_EQ(a.state.reception_count(), b.state.reception_count());
  ASSERT_EQ(a.activity.size(), b.activity.size());
  for (std::size_t u = 0; u < a.activity.size(); ++u) {
    EXPECT_EQ(a.activity[u].transmit, b.activity[u].transmit);
    EXPECT_EQ(a.activity[u].receive, b.activity[u].receive);
    EXPECT_EQ(a.activity[u].quiet, b.activity[u].quiet);
  }
}

TEST(FaultPlanTest, ChurnScheduleIsDeterministic) {
  const net::Network network = small_clique(8);
  const sim::SlotFaultPlan plan = churn_plan(0.7);
  const util::SeedSequence seeds(99 + soak_offset());
  const sim::FaultState<std::uint64_t> a(network, seeds, plan);
  const sim::FaultState<std::uint64_t> b(network, seeds, plan);
  for (net::NodeId u = 0; u < 8; ++u) {
    for (std::uint64_t t = 0; t < 200; ++t) {
      ASSERT_EQ(a.down_at(u, t), b.down_at(u, t))
          << "node " << u << " slot " << t;
    }
  }
}

TEST(FaultPlanTest, ChurnDownWindowBoundaries) {
  // Degenerate windows pin the schedule exactly: crash at 5, down for 3
  // slots -> down on [5, 8), up again at 8.
  const net::Network network = small_clique(3);
  sim::SlotFaultPlan plan;
  plan.churn.crash_probability = 1.0;
  plan.churn.earliest_crash = 5;
  plan.churn.latest_crash = 5;
  plan.churn.min_down = 3;
  plan.churn.max_down = 3;
  const sim::FaultState<std::uint64_t> state(
      network, util::SeedSequence(1), plan);
  for (net::NodeId u = 0; u < 3; ++u) {
    EXPECT_FALSE(state.down_at(u, 4));
    EXPECT_TRUE(state.down_at(u, 5));
    EXPECT_TRUE(state.down_at(u, 7));
    EXPECT_FALSE(state.down_at(u, 8));
  }
}

TEST(FaultPlanTest, DisabledPlanIsInert) {
  // A plan whose every fault is disabled — even with all the other knobs
  // populated — must reproduce the plain run bit-identically (the fault
  // streams are salted derives that are simply never drawn).
  const net::Network network = small_clique();
  sim::SlotEngineConfig plain;
  plain.max_slots = 3'000;
  plain.seed = 7 + soak_offset();
  plain.loss_probability = 0.2;

  sim::SlotEngineConfig disabled = plain;
  disabled.faults.churn.crash_probability = 0.0;  // disabled
  disabled.faults.churn.earliest_crash = 10;
  disabled.faults.churn.latest_crash = 50;
  disabled.faults.churn.min_down = 5;
  disabled.faults.churn.max_down = 9;
  disabled.faults.burst_loss.enabled = false;  // disabled
  disabled.faults.burst_loss.loss_bad = 0.99;
  disabled.faults.drift_wander.enabled = false;
  ASSERT_FALSE(disabled.faults.any());

  const auto factory = core::make_algorithm3(6);
  const auto a = sim::run_slot_engine(network, factory, plain);
  const auto b = sim::run_slot_engine(network, factory, disabled);
  expect_identical_results(a, b);
  EXPECT_FALSE(b.robustness.enabled);
  EXPECT_EQ(b.robustness.crashed_nodes, 0u);
}

TEST(FaultPlanTest, LosslessGilbertElliottMatchesLossFree) {
  // p(good->bad) = 0 and loss_good = 0: the chain never loses a message.
  // Its two draws per opportunity come from the dedicated loss stream,
  // which nothing else reads, so the run must match the loss-free run
  // bit-identically.
  const net::Network network = small_clique();
  sim::SlotEngineConfig clean;
  clean.max_slots = 3'000;
  clean.seed = 11 + soak_offset();

  sim::SlotEngineConfig bursty = clean;
  bursty.faults.burst_loss.enabled = true;
  bursty.faults.burst_loss.p_good_to_bad = 0.0;
  bursty.faults.burst_loss.p_bad_to_good = 0.5;
  bursty.faults.burst_loss.loss_good = 0.0;
  bursty.faults.burst_loss.loss_bad = 0.9;

  const auto factory = core::make_algorithm3(6);
  const auto a = sim::run_slot_engine(network, factory, clean);
  const auto b = sim::run_slot_engine(network, factory, bursty);
  expect_identical_results(a, b);
  EXPECT_TRUE(b.robustness.enabled);  // a plan was attached, just lossless
}

TEST(FaultPlanTest, BurstLossDelaysButDoesNotPreventDiscovery) {
  const net::Network network = small_clique();
  sim::SlotEngineConfig clean;
  clean.max_slots = 200'000;
  clean.seed = 13 + soak_offset();

  sim::SlotEngineConfig bursty = clean;
  bursty.faults.burst_loss.enabled = true;
  bursty.faults.burst_loss.p_good_to_bad = 0.1;
  bursty.faults.burst_loss.p_bad_to_good = 0.1;
  bursty.faults.burst_loss.loss_good = 0.0;
  bursty.faults.burst_loss.loss_bad = 0.95;

  const auto factory = core::make_algorithm3(6);
  const auto a = sim::run_slot_engine(network, factory, clean);
  const auto b = sim::run_slot_engine(network, factory, bursty);
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_GE(b.completion_slot, a.completion_slot);
}

TEST(FaultPlanTest, ScheduledSpectrumBlockedBoundaries) {
  const net::Network network = small_clique(2);
  sim::SlotFaultPlan plan;
  plan.positions = {{0.0, 0.0}, {10.0, 10.0}};
  net::ScheduledPrimaryUser pu;
  pu.user.position = {0.0, 0.0};
  pu.user.radius = 1.0;
  pu.user.channel = 0;
  pu.on_from = 10.0;
  pu.on_until = 20.0;
  plan.spectrum.push_back(pu);
  const sim::FaultState<std::uint64_t> state(
      network, util::SeedSequence(1), plan);
  // Activation interval is [on_from, on_until).
  EXPECT_FALSE(state.spectrum_blocked(9, 0, 0));
  EXPECT_TRUE(state.spectrum_blocked(10, 0, 0));
  EXPECT_TRUE(state.spectrum_blocked(19, 0, 0));
  EXPECT_FALSE(state.spectrum_blocked(20, 0, 0));
  // Wrong channel, or a node outside the PU disk, is never blocked.
  EXPECT_FALSE(state.spectrum_blocked(15, 0, 1));
  EXPECT_FALSE(state.spectrum_blocked(15, 1, 0));
}

TEST(FaultPlanTest, ChurnRobustnessReportIsConsistent) {
  const net::Network network = small_clique(6);
  sim::SlotEngineConfig config;
  config.max_slots = 50'000;
  config.seed = 21 + soak_offset();
  config.faults = churn_plan(1.0);

  const auto result =
      sim::run_slot_engine(network, core::make_algorithm3(6), config);
  const sim::RobustnessReport& report = result.robustness;
  ASSERT_TRUE(report.enabled);
  EXPECT_GE(report.crashed_nodes, 1u);
  EXPECT_LE(report.crashed_nodes, 6u);
  EXPECT_LE(report.covered_surviving_links, report.surviving_links);
  EXPECT_LE(report.rediscovered_links, report.recovered_links);
  EXPECT_GE(report.surviving_recall(), 0.0);
  EXPECT_LE(report.surviving_recall(), 1.0);
  if (report.rediscovered_links > 0) {
    EXPECT_GT(report.mean_rediscovery, 0.0);
    EXPECT_GE(report.max_rediscovery, report.mean_rediscovery);
  }
  // A completed run with every node back up discovered everyone who
  // matters: recall over surviving links is 1 by definition of complete.
  if (result.complete && report.down_at_end == 0) {
    EXPECT_DOUBLE_EQ(report.surviving_recall(), 1.0);
  }
}

TEST(FaultPlanTest, SerialAndParallelTrialsIdenticalWithFaults) {
  const net::Network network = small_clique(8);
  runner::SyncTrialConfig serial;
  serial.trials = 12;
  serial.seed = 31 + soak_offset();
  serial.threads = 1;
  serial.engine.max_slots = 50'000;
  serial.engine.faults = churn_plan(0.6);
  serial.engine.faults.burst_loss.enabled = true;
  serial.engine.faults.burst_loss.p_good_to_bad = 0.05;
  serial.engine.faults.burst_loss.p_bad_to_good = 0.2;
  serial.engine.faults.burst_loss.loss_bad = 0.8;

  runner::SyncTrialConfig parallel = serial;
  parallel.threads = 4;

  const auto factory = core::make_algorithm3(8);
  const auto a = runner::run_sync_trials(network, factory, serial);
  const auto b = runner::run_sync_trials(network, factory, parallel);

  EXPECT_EQ(a.completed, b.completed);
  const auto sa = a.completion_slots.summarize();
  const auto sb = b.completion_slots.summarize();
  EXPECT_DOUBLE_EQ(sa.mean, sb.mean);
  EXPECT_DOUBLE_EQ(sa.p90, sb.p90);
  EXPECT_EQ(a.robustness.fault_trials, b.robustness.fault_trials);
  EXPECT_EQ(a.robustness.recovered_links, b.robustness.recovered_links);
  EXPECT_EQ(a.robustness.rediscovered_links,
            b.robustness.rediscovered_links);
  EXPECT_DOUBLE_EQ(a.robustness.surviving_recall.summarize().mean,
                   b.robustness.surviving_recall.summarize().mean);
  EXPECT_DOUBLE_EQ(a.robustness.ghost_entries.summarize().mean,
                   b.robustness.ghost_entries.summarize().mean);
}

TEST(FaultPlanTest, AdversaryFractionZeroIsInert) {
  // fraction = 0 with every other adversary knob populated must reproduce
  // the plain run bit-identically on the classic engine: the role streams
  // are salted derives that are never drawn when the spec is disabled.
  const net::Network network = small_clique();
  sim::SlotEngineConfig plain;
  plain.max_slots = 3'000;
  plain.seed = 41 + soak_offset();
  plain.loss_probability = 0.15;

  sim::SlotEngineConfig frozen = plain;
  frozen.faults.adversary.fraction = 0.0;  // disabled
  frozen.faults.adversary.attack = sim::AdversaryAttack::kByzantine;
  frozen.faults.adversary.byzantine_tx = 0.9;
  frozen.faults.adversary.victim_fraction = 1.0;
  ASSERT_FALSE(frozen.faults.any());

  const auto factory = core::make_algorithm3(6);
  const auto a = sim::run_slot_engine(network, factory, plain);
  const auto b = sim::run_slot_engine(network, factory, frozen);
  expect_identical_results(a, b);
  EXPECT_FALSE(b.robustness.enabled);
  EXPECT_FALSE(b.robustness.adversary);
  EXPECT_EQ(b.robustness.adversary_nodes, 0u);
}

[[nodiscard]] sim::SlotFaultPlan adversary_plan(
    double fraction, sim::AdversaryAttack attack) {
  sim::SlotFaultPlan plan;
  plan.adversary.fraction = fraction;
  plan.adversary.attack = attack;
  plan.adversary.byzantine_tx = 0.8;
  plan.adversary.victim_fraction = 0.5;
  return plan;
}

TEST(FaultPlanTest, AdversaryRolesAreDeterministicAndAttackInvariant) {
  // Same seeds -> same roles and parameters; and because the adversary
  // coin is the first draw of each role stream, switching the attack type
  // keeps the adversary SET fixed (only the behaviour changes).
  const net::Network network = small_clique(10);
  const util::SeedSequence seeds(77 + soak_offset());
  const sim::FaultState<std::uint64_t> a(
      network, seeds, adversary_plan(0.5, sim::AdversaryAttack::kMix));
  const sim::FaultState<std::uint64_t> b(
      network, seeds, adversary_plan(0.5, sim::AdversaryAttack::kMix));
  const sim::FaultState<std::uint64_t> jam(
      network, seeds, adversary_plan(0.5, sim::AdversaryAttack::kJam));
  EXPECT_EQ(a.adversary_count(), b.adversary_count());
  EXPECT_EQ(a.adversary_count(), jam.adversary_count());
  EXPECT_GE(a.adversary_count(), 1u);
  std::size_t honest = 0;
  for (net::NodeId u = 0; u < 10; ++u) {
    ASSERT_EQ(a.role(u), b.role(u)) << "node " << u;
    // Attack-type invariance of the adversary set.
    ASSERT_EQ(a.role(u) == sim::AdversaryRole::kHonest,
              jam.role(u) == sim::AdversaryRole::kHonest)
        << "node " << u;
    if (jam.role(u) == sim::AdversaryRole::kJammer) {
      EXPECT_LT(jam.jam_channel(u), 4u);  // drawn from A(u), universe 4
    }
    if (a.role(u) == sim::AdversaryRole::kByzantine) {
      ASSERT_EQ(a.fake_id(u), b.fake_id(u));
      EXPECT_LT(a.fake_id(u), 20u);  // [0, 2n)
    }
    honest += a.role(u) == sim::AdversaryRole::kHonest ? 1 : 0;
  }
  EXPECT_EQ(honest + a.adversary_count(), 10u);
}

TEST(FaultPlanTest, ByzantineAliasedFakeIdCountsOnceAsReal) {
  // A Byzantine fake ID drawn below n can collide with a real node's ID.
  // When the aliased real arc (fake -> listener) is covered, the listener's
  // table already holds that entry as real knowledge: assess must count it
  // once (real), not also as a fake entry. Scan seeds for a Byzantine node
  // whose fake ID aliases a real node other than itself and the listener —
  // on a clique every such arc exists.
  const net::NodeId n = 6;
  const net::Network network = small_clique(n);
  const sim::SlotFaultPlan plan =
      adversary_plan(1.0, sim::AdversaryAttack::kByzantine);
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    sim::FaultState<std::uint64_t> state(
        network, util::SeedSequence(seed), plan);
    net::NodeId byz = net::kInvalidNode;
    for (net::NodeId u = 0; u < n; ++u) {
      if (state.role(u) == sim::AdversaryRole::kByzantine &&
          state.fake_id(u) < n && state.fake_id(u) != u) {
        byz = u;
        break;
      }
    }
    if (byz == net::kInvalidNode) continue;
    const net::NodeId fake = state.fake_id(byz);
    const net::NodeId listener = fake == 0 ? (byz == 1 ? 2 : 1)
                                           : (byz == 0 ? (fake == 1 ? 2 : 1)
                                                       : 0);
    ASSERT_NE(listener, byz);
    ASSERT_NE(listener, fake);

    // The listener decodes the Byzantine announcement of `fake`...
    EXPECT_TRUE(state.note_fake_decode(byz, listener, 10));
    EXPECT_FALSE(state.note_fake_decode(byz, listener, 20));  // refresh only

    // ...without the aliased real arc covered: one fake entry.
    sim::DiscoveryState uncovered(network);
    const auto before = state.assess(uncovered, 100);
    ASSERT_TRUE(before.adversary);
    EXPECT_EQ(before.fake_entries, 1u);
    EXPECT_EQ(before.real_entries, 0u);

    // With the aliased arc fake -> listener covered: the entry is real
    // knowledge, counted exactly once (no double count as fake).
    sim::DiscoveryState covered(network);
    ASSERT_TRUE(covered.record_reception(fake, listener, 5.0));
    const auto after = state.assess(covered, 100);
    EXPECT_EQ(after.real_entries, 1u);
    EXPECT_EQ(after.fake_entries, 0u);
    EXPECT_EQ(after.ghost_entries, 0u);
    return;  // found and verified a collision scenario
  }
  FAIL() << "no seed produced an aliasing Byzantine fake ID";
}

TEST(FaultPlanTest, SerialAndParallelTrialsIdenticalWithAdversaries) {
  const net::Network network = small_clique(8);
  runner::SyncTrialConfig serial;
  serial.trials = 10;
  serial.seed = 51 + soak_offset();
  serial.threads = 1;
  serial.engine.max_slots = 4'000;
  serial.engine.faults = adversary_plan(0.4, sim::AdversaryAttack::kMix);

  runner::SyncTrialConfig parallel = serial;
  parallel.threads = 4;

  const auto factory = core::with_trust(
      core::make_algorithm3(8), aggressive_trust());
  const auto a = runner::run_sync_trials(network, factory, serial);
  const auto b = runner::run_sync_trials(network, factory, parallel);

  EXPECT_EQ(a.robustness.fault_trials, b.robustness.fault_trials);
  EXPECT_EQ(a.robustness.adversary_trials, b.robustness.adversary_trials);
  EXPECT_EQ(a.robustness.adversary_trials, serial.trials);
  EXPECT_EQ(a.robustness.fake_entries, b.robustness.fake_entries);
  EXPECT_EQ(a.robustness.isolated_fakes, b.robustness.isolated_fakes);
  EXPECT_EQ(a.robustness.honest_isolated, b.robustness.honest_isolated);
  EXPECT_DOUBLE_EQ(a.robustness.precision_under_attack.summarize().mean,
                   b.robustness.precision_under_attack.summarize().mean);
  EXPECT_EQ(a.robustness.isolation_times.count(),
            b.robustness.isolation_times.count());
  if (a.robustness.isolation_times.count() > 0) {
    EXPECT_DOUBLE_EQ(a.robustness.isolation_times.summarize().mean,
                     b.robustness.isolation_times.summarize().mean);
  }
  EXPECT_DOUBLE_EQ(a.robustness.surviving_recall.summarize().mean,
                   b.robustness.surviving_recall.summarize().mean);
}

TEST(FaultPlanTest, TrustIsolatesByzantineFakes) {
  // End-to-end: a hot Byzantine population against the trust wrapper. The
  // fakes announce far above the honest rate, so the trust table must
  // isolate at least one and stamp a positive time-to-isolation.
  const net::Network network = small_clique(8, 4);
  sim::SlotEngineConfig config;
  config.max_slots = 6'000;
  config.seed = 61 + soak_offset();
  config.faults = adversary_plan(0.5, sim::AdversaryAttack::kByzantine);
  config.faults.adversary.byzantine_tx = 0.9;

  const auto untrusted = sim::run_slot_engine(
      network, core::make_algorithm3(16), config);
  ASSERT_TRUE(untrusted.robustness.adversary);
  ASSERT_GT(untrusted.robustness.fake_entries, 0u);
  EXPECT_EQ(untrusted.robustness.isolated_fakes, 0u);

  const auto trusted = sim::run_slot_engine(
      network,
      core::with_trust(core::make_algorithm3(16), aggressive_trust()),
      config);
  EXPECT_GT(trusted.robustness.isolated_fakes, 0u);
  EXPECT_GT(trusted.robustness.mean_isolation, 0.0);
  EXPECT_GE(trusted.robustness.max_isolation,
            trusted.robustness.mean_isolation);
  EXPECT_GE(trusted.robustness.precision_under_attack(),
            untrusted.robustness.precision_under_attack());
}

TEST(FaultPlanTest, ValidationRejectsGilbertElliottPlusIidLoss) {
  const net::Network network = small_clique();
  sim::SlotEngineConfig config;
  config.loss_probability = 0.3;
  config.faults.burst_loss.enabled = true;
  EXPECT_DEATH(
      (void)sim::run_slot_engine(network, core::make_algorithm3(6), config),
      "Gilbert-Elliott");
}

}  // namespace
}  // namespace m2hew
