// Scenario coverage for the extension knobs: new topology kinds,
// asymmetrization and propagation models.
#include <gtest/gtest.h>

#include "runner/scenario.hpp"

namespace m2hew::runner {
namespace {

TEST(ScenarioExt, WattsStrogatzBuilds) {
  ScenarioConfig config;
  config.topology = TopologyKind::kWattsStrogatz;
  config.n = 30;
  config.ws_k = 4;
  config.ws_beta = 0.3;
  const net::Network network = build_scenario(config, 1);
  EXPECT_EQ(network.node_count(), 30u);
  EXPECT_GE(network.topology().arc_count(), 2u * 30u);  // at least lattice-ish
  EXPECT_NE(describe(config).find("watts-strogatz"), std::string::npos);
}

TEST(ScenarioExt, BarabasiAlbertBuilds) {
  ScenarioConfig config;
  config.topology = TopologyKind::kBarabasiAlbert;
  config.n = 40;
  config.ba_m = 2;
  const net::Network network = build_scenario(config, 2);
  EXPECT_EQ(network.node_count(), 40u);
  EXPECT_TRUE(network.topology().is_connected());
  EXPECT_NE(describe(config).find("barabasi-albert"), std::string::npos);
}

TEST(ScenarioExt, AsymmetricDropRemovesArcs) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 10;
  config.asymmetric_drop = 1.0;
  const net::Network network = build_scenario(config, 3);
  // Every edge keeps exactly one direction.
  EXPECT_EQ(network.topology().arc_count(), 45u);
  EXPECT_FALSE(network.topology().is_symmetric());
  EXPECT_NE(describe(config).find("asym="), std::string::npos);
}

TEST(ScenarioExt, ZeroDropStaysSymmetric) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 6;
  config.asymmetric_drop = 0.0;
  const net::Network network = build_scenario(config, 4);
  EXPECT_TRUE(network.topology().is_symmetric());
}

TEST(ScenarioExt, RandomMaskPropagationShrinksSpans) {
  ScenarioConfig base;
  base.topology = TopologyKind::kClique;
  base.n = 8;
  base.channels = ChannelKind::kHomogeneous;
  base.universe = 8;
  base.set_size = 8;
  const net::Network full = build_scenario(base, 5);
  ASSERT_DOUBLE_EQ(full.min_span_ratio(), 1.0);

  ScenarioConfig masked = base;
  masked.propagation = PropagationKind::kRandomMask;
  masked.prop_keep = 0.5;
  const net::Network thin = build_scenario(masked, 5);
  EXPECT_LT(thin.min_span_ratio(), 1.0);
  EXPECT_NE(describe(masked).find("prop=random"), std::string::npos);
}

TEST(ScenarioExt, MaskDeterministicPerSeed) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 6;
  config.channels = ChannelKind::kHomogeneous;
  config.universe = 8;
  config.set_size = 8;
  config.propagation = PropagationKind::kRandomMask;
  config.prop_keep = 0.6;
  const net::Network a = build_scenario(config, 9);
  const net::Network b = build_scenario(config, 9);
  for (const auto& [from, to] : a.topology().arcs()) {
    EXPECT_EQ(a.span(from, to), b.span(from, to));
  }
}

TEST(ScenarioExt, LowpassPropagationFavorsCloseIds) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 10;
  config.channels = ChannelKind::kHomogeneous;
  config.universe = 10;
  config.set_size = 10;
  config.propagation = PropagationKind::kLowpass;
  const net::Network network = build_scenario(config, 6);
  EXPECT_GT(network.span(0, 1).size(), network.span(0, 9).size());
  EXPECT_GE(network.span(0, 9).size(), 1u);
  EXPECT_NE(describe(config).find("prop=lowpass"), std::string::npos);
}

TEST(ScenarioExt, CombinedAsymmetryAndMasks) {
  ScenarioConfig config;
  config.topology = TopologyKind::kErdosRenyi;
  config.n = 12;
  config.er_edge_probability = 0.6;
  config.channels = ChannelKind::kUniformRandom;
  config.universe = 8;
  config.set_size = 5;
  config.asymmetric_drop = 0.5;
  config.propagation = PropagationKind::kRandomMask;
  config.prop_keep = 0.7;
  const net::Network network = build_scenario(config, 7);
  EXPECT_EQ(network.node_count(), 12u);
  // Links must be a subset of arcs (masking can only remove).
  EXPECT_LE(network.links().size(), network.topology().arc_count());
}

TEST(ScenarioExt, DescribeReportsEngineKnobs) {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 6;

  sim::SlotEngineCommon engine;
  // Default engine knobs add nothing to the base description.
  EXPECT_EQ(describe(config, engine), describe(config));

  engine.loss_probability = 0.25;
  engine.starts = {0, 5, 10, 0, 0, 0};
  engine.interference = [](std::uint64_t, net::NodeId, net::ChannelId) {
    return false;
  };
  engine.indexed_reception = false;
  const std::string text = describe(config, engine);
  EXPECT_NE(text.find("loss=0.25"), std::string::npos);
  EXPECT_NE(text.find("starts=var(max=10)"), std::string::npos);
  EXPECT_NE(text.find("interference=dynamic"), std::string::npos);
  EXPECT_NE(text.find("reception=reference"), std::string::npos);
}

TEST(ScenarioExt, DescribeReportsAsyncEngineKnobs) {
  ScenarioConfig config;
  config.topology = TopologyKind::kRing;
  config.n = 5;

  sim::EngineCommon<double> engine;
  engine.loss_probability = 0.1;
  engine.starts = {0.0, 2.5, 1.0, 0.0, 0.0};
  const std::string text = describe(config, engine);
  EXPECT_NE(text.find("loss=0.1"), std::string::npos);
  EXPECT_NE(text.find("starts=var(max=2.5"), std::string::npos);
  EXPECT_EQ(text.find("interference="), std::string::npos);
}

}  // namespace
}  // namespace m2hew::runner
