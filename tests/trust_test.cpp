// Unit tests for the trust-scored neighbor table (core/trust.*): identity
// of the disabled wrapper, rate-anomaly scoring and blocking, probation
// after blocklist expiry, the windowed last-seen prune, and the
// no-RNG-draws determinism contract.
#include "core/trust.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithms.hpp"
#include "net/channel_assign.hpp"
#include "net/topology_gen.hpp"
#include "sim/slot_engine.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

[[nodiscard]] net::Network small_clique(net::NodeId n = 6,
                                        net::ChannelId universe = 4) {
  return net::Network(
      net::make_clique(n),
      std::vector<net::ChannelSet>(n, net::ChannelSet::full(universe)));
}

/// Inert inner policy: always listens on channel 0, ignores all feedback,
/// draws nothing — so every observable of the wrapper is the wrapper's.
class ListenPolicy final : public sim::SyncPolicy {
 public:
  [[nodiscard]] sim::SlotAction next_slot(util::Rng& rng) override {
    (void)rng;
    return sim::SlotAction{sim::Mode::kReceive, 0};
  }
};

/// A trust config with decay 1 (no forgiveness) and reward 0, so scores
/// move only on penalties — arithmetic in the tests stays exact.
[[nodiscard]] core::TrustConfig exact_config() {
  core::TrustConfig config;
  config.enabled = true;
  config.threshold = 0.5;
  config.reward = 0.0;
  config.rate_penalty = 0.3;
  config.decay = 1.0;
  config.rate_window = 16;
  config.max_per_window = 1;
  config.block_slots = 10;
  config.entry_window = 8;
  return config;
}

[[nodiscard]] core::TrustedSyncPolicy make_policy(
    const core::TrustConfig& config) {
  return core::TrustedSyncPolicy(std::make_unique<ListenPolicy>(), config);
}

void advance(core::TrustedSyncPolicy& policy, std::uint64_t slots) {
  util::Rng rng(1);
  for (std::uint64_t i = 0; i < slots; ++i) (void)policy.next_slot(rng);
}

TEST(TrustTest, DisabledWrapperIsBitIdentical) {
  // with_trust with enabled == false returns the inner factory unchanged;
  // a full engine run must be bit-identical to the unwrapped one.
  const net::Network network = small_clique();
  sim::SlotEngineConfig config;
  config.max_slots = 2'000;
  config.seed = 5;
  core::TrustConfig off;  // enabled defaults to false

  const auto plain = sim::run_slot_engine(
      network, core::make_algorithm3(6), config);
  const auto wrapped = sim::run_slot_engine(
      network, core::with_trust(core::make_algorithm3(6), off), config);
  EXPECT_EQ(plain.complete, wrapped.complete);
  EXPECT_EQ(plain.completion_slot, wrapped.completion_slot);
  EXPECT_EQ(plain.state.covered_links(), wrapped.state.covered_links());
  EXPECT_EQ(plain.state.reception_count(), wrapped.state.reception_count());
}

TEST(TrustTest, EnabledWrapperDrawsNothingFromTheRng) {
  // The wrapper keys every decision off the node-local slot counter; its
  // next_slot must consume exactly the draws of the inner policy, so an
  // enabled-but-never-triggered trust table leaves the schedule stream
  // untouched.
  const net::Network network = small_clique();
  auto inner = core::make_algorithm3(6)(network, 0);
  auto wrapped = core::TrustedSyncPolicy(core::make_algorithm3(6)(network, 0),
                                         exact_config());
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  for (int i = 0; i < 500; ++i) {
    const sim::SlotAction a = inner->next_slot(rng_a);
    const sim::SlotAction b = wrapped.next_slot(rng_b);
    ASSERT_EQ(a.mode, b.mode) << "slot " << i;
    ASSERT_EQ(a.channel, b.channel) << "slot " << i;
  }
}

TEST(TrustTest, RateAnomalyBlocksHammeredId) {
  // max_per_window = 1, penalty 0.3, threshold 0.5, no decay/reward:
  // attempts in one slot run 1 (ok), 2 (penalty -> 0.7), 3 (ok, window
  // reset by the penalty), 4 (penalty -> 0.4 < 0.5 -> blocked).
  auto policy = make_policy(exact_config());
  advance(policy, 1);
  EXPECT_TRUE(policy.admit_neighbor(7));
  EXPECT_TRUE(policy.admit_neighbor(7));
  EXPECT_TRUE(policy.admit_neighbor(7));
  EXPECT_FALSE(policy.admit_neighbor(7));
  EXPECT_TRUE(policy.blocked(7));
  // Still blocked on the next attempt, and rate accounting continues.
  EXPECT_FALSE(policy.admit_neighbor(7));
  // An unrelated well-behaved ID is unaffected.
  EXPECT_TRUE(policy.admit_neighbor(3));
  EXPECT_FALSE(policy.blocked(3));
}

TEST(TrustTest, SlowSenderStaysTrusted) {
  // One announcement per rate window never trips the anomaly and is always
  // admitted. The entry window is stretched so the record genuinely
  // persists between announcements instead of being pruned and recreated.
  core::TrustConfig config = exact_config();
  config.entry_window = 100'000;
  auto policy = make_policy(config);
  for (int round = 0; round < 50; ++round) {
    advance(policy, 16 + 1);
    EXPECT_TRUE(policy.admit_neighbor(9)) << "round " << round;
  }
  EXPECT_FALSE(policy.blocked(9));
}

TEST(TrustTest, ProbationAfterBlockExpiry) {
  // entry_window far beyond the quiet period: otherwise the lazy prune
  // drops the record the moment its block expires (last_seen went stale
  // while blocked) and the ID would restart with full-trust amnesty
  // instead of probation.
  core::TrustConfig config = exact_config();
  config.entry_window = 1'000;
  auto policy = make_policy(config);
  advance(policy, 1);
  EXPECT_TRUE(policy.admit_neighbor(7));
  EXPECT_TRUE(policy.admit_neighbor(7));
  EXPECT_TRUE(policy.admit_neighbor(7));
  EXPECT_FALSE(policy.admit_neighbor(7));  // blocked at slot 0
  ASSERT_TRUE(policy.blocked(7));

  // Past block_slots (10) the ID is re-admitted on probation: its score
  // restarts exactly at the threshold...
  advance(policy, 12);
  EXPECT_TRUE(policy.admit_neighbor(7));
  EXPECT_FALSE(policy.blocked(7));
  // ...so a single fresh anomaly re-blocks it immediately (the penalty
  // takes the probation score 0.5 to 0.2, under the threshold).
  EXPECT_FALSE(policy.admit_neighbor(7));
  EXPECT_TRUE(policy.blocked(7));
}

TEST(TrustTest, PruneDropsStaleRecordsButKeepsActiveBlocks) {
  // entry_window = 8: a record not refreshed for more than 8 node-local
  // slots is dropped by the lazy prune (stride entry_window / 4 = 2)...
  core::TrustConfig config = exact_config();
  config.block_slots = 100;  // block far outlives the entry window
  auto policy = make_policy(config);
  advance(policy, 1);
  EXPECT_TRUE(policy.admit_neighbor(3));
  EXPECT_EQ(policy.tracked(), 1u);
  advance(policy, 20);
  EXPECT_EQ(policy.tracked(), 0u);

  // ...but a blocked record survives pruning until its block expires —
  // forgetting early would hand the attacker a free reset by going quiet.
  EXPECT_TRUE(policy.admit_neighbor(5));
  EXPECT_TRUE(policy.admit_neighbor(5));
  EXPECT_TRUE(policy.admit_neighbor(5));
  EXPECT_FALSE(policy.admit_neighbor(5));
  ASSERT_TRUE(policy.blocked(5));
  advance(policy, 40);  // well past entry_window, inside block_slots
  EXPECT_EQ(policy.tracked(), 1u);
  EXPECT_TRUE(policy.blocked(5));
}

TEST(TrustTest, ValidationRejectsNonsenseConfigs) {
  core::TrustConfig config = exact_config();
  config.threshold = 1.0;
  EXPECT_DEATH(core::validate_trust_config(config), "threshold");
  config = exact_config();
  config.decay = 0.0;
  EXPECT_DEATH(core::validate_trust_config(config), "decay");
  config = exact_config();
  config.rate_window = 0;
  EXPECT_DEATH(core::validate_trust_config(config), "window");
}

}  // namespace
}  // namespace m2hew
