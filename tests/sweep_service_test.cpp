// The tentpole acceptance contract of the sweep service: daemon-sharded
// streaming aggregation is bit-identical to the batch runner across worker
// counts 1/2/4 — including RobustnessStats under a fault plan — the sweep
// survives a SIGKILLed worker, and the spool daemon round-trips a spec
// end-to-end with a cache hit on resubmission.
#include "service/sweep_runner.hpp"

#include <gtest/gtest.h>
#include <stdlib.h>
#include <sys/stat.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy_spec.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "service/artifact_cache.hpp"
#include "service/daemon.hpp"
#include "service/sweep_spec.hpp"
#include "util/ini.hpp"

namespace m2hew::service {
namespace {

constexpr const char* kFaultedSpec = R"(
[experiment]
name = service_test
algorithm = alg3
delta-est = 4
trials = 10
seed = 3
max-slots = 60000
sweep-key = overlap
sweep-values = 4 2

[scenario]
topology = line
channels = chain
n = 8
set-size = 4

[faults]
crash-prob = 0.4
crash-from = 50
crash-until = 2000
down-min = 50
down-max = 500
burst-loss = 0.8
burst-p-gb = 0.05
burst-p-bg = 0.2
)";

[[nodiscard]] SweepSpec parse_or_die(const std::string& text) {
  const util::IniFile ini = util::IniFile::parse_string(text);
  SweepSpec spec;
  std::string error;
  EXPECT_TRUE(parse_sweep_spec(ini, spec, &error)) << error;
  return spec;
}

/// Element-wise bit equality of retained samples: the streaming fold must
/// add the exact same doubles in the exact same order as the batch fold.
void expect_bit_identical_samples(const util::Samples& a,
                                  const util::Samples& b) {
  ASSERT_EQ(a.count(), b.count());
  const auto va = a.values();
  const auto vb = b.values();
  for (std::size_t i = 0; i < va.size(); ++i) {
    EXPECT_EQ(va[i], vb[i]) << "sample " << i;
  }
}

void expect_bit_identical_stats(const runner::SyncTrialStats& a,
                                const runner::SyncTrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.completed, b.completed);
  expect_bit_identical_samples(a.completion_slots, b.completion_slots);
  EXPECT_EQ(a.robustness.fault_trials, b.robustness.fault_trials);
  expect_bit_identical_samples(a.robustness.surviving_recall,
                               b.robustness.surviving_recall);
  expect_bit_identical_samples(a.robustness.ghost_entries,
                               b.robustness.ghost_entries);
  expect_bit_identical_samples(a.robustness.rediscovery_times,
                               b.robustness.rediscovery_times);
  EXPECT_EQ(a.robustness.recovered_links, b.robustness.recovered_links);
  EXPECT_EQ(a.robustness.rediscovered_links,
            b.robustness.rediscovered_links);
}

/// The batch oracle: runner::run_sync_trials exactly as m2hew_experiment
/// invokes it, one call per sweep point.
[[nodiscard]] std::vector<runner::SyncTrialStats> batch_oracle(
    const SweepSpec& spec) {
  std::vector<runner::SyncTrialStats> points;
  SweepResult batch;
  std::string error;
  EXPECT_TRUE(run_sweep(spec, 1, batch, &error)) << error;
  for (const auto& point : batch.points) points.push_back(point.stats);
  return points;
}

TEST(SweepService, ShardedEqualsBatchAcrossWorkerCounts) {
  const SweepSpec spec = parse_or_die(kFaultedSpec);
  const std::vector<runner::SyncTrialStats> oracle = batch_oracle(spec);
  ASSERT_EQ(oracle.size(), 2u);
  // The robustness block must actually be exercised, or this test proves
  // nothing about fault-plan streaming.
  EXPECT_GT(oracle[0].robustness.fault_trials, 0u);

  for (const std::size_t workers : {2u, 4u}) {
    SweepResult sharded;
    std::string error;
    ASSERT_TRUE(run_sweep(spec, workers, sharded, &error)) << error;
    ASSERT_EQ(sharded.points.size(), oracle.size());
    for (std::size_t p = 0; p < oracle.size(); ++p) {
      expect_bit_identical_stats(sharded.points[p].stats, oracle[p]);
    }
  }
}

TEST(SweepService, ShardedEqualsBatchDirectRunnerCall) {
  // Same contract, stated against a literal run_sync_trials call rather
  // than through run_sweep's own batch path.
  SweepSpec spec = parse_or_die(kFaultedSpec);
  spec.sweep_key.clear();
  spec.sweep_values = {0.0};

  const net::Network network =
      runner::build_scenario(spec.scenario, spec.seed);
  runner::SyncTrialConfig trial;
  trial.trials = spec.trials;
  trial.seed = spec.seed;
  trial.threads = 1;
  trial.engine.max_slots = spec.max_slots;
  trial.engine.faults = spec.faults;
  const auto direct = runner::run_sync_trials(
      network, core::SyncPolicySpec::algorithm3(spec.delta_est), trial);

  SweepResult sharded;
  std::string error;
  ASSERT_TRUE(run_sweep(spec, 4, sharded, &error)) << error;
  ASSERT_EQ(sharded.points.size(), 1u);
  expect_bit_identical_stats(sharded.points[0].stats, direct);
}

TEST(SweepService, SoaKernelShardsIdentically) {
  SweepSpec spec = parse_or_die(kFaultedSpec);
  spec.kernel = runner::SyncKernel::kSoa;
  const std::vector<runner::SyncTrialStats> oracle = batch_oracle(spec);
  SweepResult sharded;
  std::string error;
  ASSERT_TRUE(run_sweep(spec, 3, sharded, &error)) << error;
  ASSERT_EQ(sharded.points.size(), oracle.size());
  for (std::size_t p = 0; p < oracle.size(); ++p) {
    expect_bit_identical_stats(sharded.points[p].stats, oracle[p]);
  }
}

TEST(SweepService, SurvivesSigkilledWorker) {
  char tmpl[] = "/tmp/m2hew_kill_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string marker = std::string(tmpl) + "/killed";

  const SweepSpec spec = parse_or_die(kFaultedSpec);
  const std::vector<runner::SyncTrialStats> oracle = batch_oracle(spec);

  // Shard 1 of 3 SIGKILLs itself halfway through its records (once; the
  // marker file arms the hook exactly one time).
  ::setenv("M2HEW_TEST_WORKER_KILL", ("1:" + marker).c_str(), 1);
  SweepResult sharded;
  std::string error;
  const bool ok = run_sweep(spec, 3, sharded, &error);
  ::unsetenv("M2HEW_TEST_WORKER_KILL");
  ASSERT_TRUE(ok) << error;

  // The hook genuinely fired...
  struct stat st {};
  EXPECT_EQ(::stat(marker.c_str(), &st), 0) << "kill hook never fired";
  // ...and the aggregate is still exactly the batch aggregate.
  ASSERT_EQ(sharded.points.size(), oracle.size());
  for (std::size_t p = 0; p < oracle.size(); ++p) {
    expect_bit_identical_stats(sharded.points[p].stats, oracle[p]);
  }
}

TEST(SweepService, RejectsUnbuildableScenario) {
  SweepSpec spec = parse_or_die(kFaultedSpec);
  spec.scenario.topology = runner::TopologyKind::kRing;  // chain needs line
  SweepResult result;
  std::string error;
  EXPECT_FALSE(run_sweep(spec, 2, result, &error));
  EXPECT_NE(error, "");
}

TEST(SweepDaemon, OnceModeProcessesSubmissionThenHitsCache) {
  char tmpl[] = "/tmp/m2hew_daemon_test_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string spool = std::string(tmpl) + "/spool";

  DaemonConfig config;
  config.spool_dir = spool;
  config.workers = 2;
  config.once = true;

  // First --once run on an empty spool just creates the layout.
  ASSERT_EQ(run_daemon(config), 0);

  const auto submit = [&](const std::string& job) {
    std::ofstream out(spool + "/incoming/" + job + ".ini");
    out << kFaultedSpec;
  };
  const auto status_of = [&](const std::string& job) {
    std::ifstream in(spool + "/status/" + job + ".json");
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };

  submit("first");
  ASSERT_EQ(run_daemon(config), 0);
  const std::string first = status_of("first");
  EXPECT_NE(first.find("\"state\": \"done\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"cache\": \"miss\""), std::string::npos) << first;
  // The artifact exists, is valid-ish JSON, and carries the spec identity.
  const SweepSpec spec = parse_or_die(kFaultedSpec);
  const std::string artifact_path =
      spool + "/cache/" + scenario_hash_hex(spec) + ".json";
  std::ifstream artifact(artifact_path);
  ASSERT_TRUE(static_cast<bool>(artifact)) << artifact_path;
  std::ostringstream artifact_text;
  artifact_text << artifact.rdbuf();
  EXPECT_NE(artifact_text.str().find("\"bench\": \"service_test\""),
            std::string::npos);
  EXPECT_NE(artifact_text.str().find("\"runs\""), std::string::npos);
  // The spec moved out of incoming/ into done/.
  struct stat st {};
  EXPECT_NE(::stat((spool + "/incoming/first.ini").c_str(), &st), 0);
  EXPECT_EQ(::stat((spool + "/done/first.ini").c_str(), &st), 0);

  // Resubmitting the same spec under another job name: answered from the
  // cache without re-running.
  submit("second");
  ASSERT_EQ(run_daemon(config), 0);
  const std::string second = status_of("second");
  EXPECT_NE(second.find("\"state\": \"done\""), std::string::npos) << second;
  EXPECT_NE(second.find("\"cache\": \"hit\""), std::string::npos) << second;

  // A malformed submission fails its job (daemon exits 0 regardless) and
  // lands in failed/.
  {
    std::ofstream out(spool + "/incoming/broken.ini");
    out << "[experiment\nalgorithm = alg3\n";
  }
  ASSERT_EQ(run_daemon(config), 0);
  const std::string broken = status_of("broken");
  EXPECT_NE(broken.find("\"state\": \"failed\""), std::string::npos)
      << broken;
  EXPECT_EQ(::stat((spool + "/failed/broken.ini").c_str(), &st), 0);

  // Shutdown sentinel: removed, clean exit, even in watch mode.
  {
    std::ofstream sentinel(spool + "/shutdown");
  }
  DaemonConfig watch = config;
  watch.once = false;
  ASSERT_EQ(run_daemon(watch), 0);
  EXPECT_NE(::stat((spool + "/shutdown").c_str(), &st), 0);
}

TEST(SweepArtifact, MatchesBenchSchema) {
  SweepSpec spec = parse_or_die(kFaultedSpec);
  spec.trials = 3;
  SweepResult result;
  std::string error;
  ASSERT_TRUE(run_sweep(spec, 2, result, &error)) << error;
  const std::string json = sweep_artifact_json(spec, result);
  for (const char* field :
       {"\"bench\": \"service_test\"", "\"params\"", "\"runs\"",
        "\"throughput\"", "\"scenario_hash\"", "\"binary_version\"",
        "\"fault_trials\"", "\"sweep_key\": \"overlap\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << "\n" << json;
  }
}

}  // namespace
}  // namespace m2hew::service
