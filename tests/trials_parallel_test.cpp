// Parallel trial dispatch must be invisible in the results: for any thread
// count, run_sync_trials / run_async_trials return bit-identical aggregates
// to the serial path (same root seed -> same per-trial seeds -> same
// outcomes, reduced in trial order). Also exercises the worker pool around
// its edges (trial counts below / at / above the thread count).
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/thread_pool.hpp"

namespace m2hew::runner {
namespace {

[[nodiscard]] net::Network small_net() {
  ScenarioConfig config;
  config.topology = TopologyKind::kClique;
  config.n = 6;
  config.channels = ChannelKind::kUniformRandom;
  config.universe = 6;
  config.set_size = 3;
  return build_scenario(config, 7);
}

void expect_identical(const SyncTrialStats& a, const SyncTrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.completion_slots.count(), b.completion_slots.count());
  for (std::size_t i = 0; i < a.completion_slots.count(); ++i) {
    EXPECT_EQ(a.completion_slots.values()[i], b.completion_slots.values()[i])
        << "trial-ordered sample " << i << " diverged";
  }
  const auto sa = a.completion_slots.summarize();
  const auto sb = b.completion_slots.summarize();
  EXPECT_EQ(sa.mean, sb.mean);
  EXPECT_EQ(sa.stddev, sb.stddev);
  EXPECT_EQ(sa.min, sb.min);
  EXPECT_EQ(sa.max, sb.max);
  EXPECT_EQ(sa.p50, sb.p50);
  EXPECT_EQ(sa.p99, sb.p99);
}

void expect_identical(const AsyncTrialStats& a, const AsyncTrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.completion_after_ts.count(), b.completion_after_ts.count());
  for (std::size_t i = 0; i < a.completion_after_ts.count(); ++i) {
    EXPECT_EQ(a.completion_after_ts.values()[i],
              b.completion_after_ts.values()[i]);
  }
  ASSERT_EQ(a.max_full_frames.count(), b.max_full_frames.count());
  for (std::size_t i = 0; i < a.max_full_frames.count(); ++i) {
    EXPECT_EQ(a.max_full_frames.values()[i], b.max_full_frames.values()[i]);
  }
  const auto sa = a.completion_after_ts.summarize();
  const auto sb = b.completion_after_ts.summarize();
  EXPECT_EQ(sa.mean, sb.mean);
  EXPECT_EQ(sa.stddev, sb.stddev);
}

TEST(ParallelSyncTrials, SerialAndParallelAreBitIdentical) {
  const net::Network network = small_net();
  SyncTrialConfig config;
  config.trials = 12;
  config.seed = 42;
  config.engine.max_slots = 100000;

  config.threads = 1;
  const SyncTrialStats serial =
      run_sync_trials(network, core::make_algorithm1(8), config);
  EXPECT_EQ(serial.threads_used, 1u);

  config.threads = 4;
  const SyncTrialStats parallel =
      run_sync_trials(network, core::make_algorithm1(8), config);
  EXPECT_GE(parallel.threads_used, 1u);

  expect_identical(serial, parallel);
}

TEST(ParallelSyncTrials, TrialCountsBelowAtAndAboveThreadCount) {
  const net::Network network = small_net();
  for (const std::size_t trials : {1ul, 2ul, 4ul, 13ul}) {
    SyncTrialConfig config;
    config.trials = trials;
    config.seed = 5;
    config.engine.max_slots = 100000;

    config.threads = 1;
    const SyncTrialStats serial =
        run_sync_trials(network, core::make_algorithm3(8), config);
    config.threads = 4;
    const SyncTrialStats parallel =
        run_sync_trials(network, core::make_algorithm3(8), config);
    // Never more workers than trials.
    EXPECT_LE(parallel.threads_used, std::max<std::size_t>(trials, 1));
    expect_identical(serial, parallel);
  }
}

TEST(ParallelSyncTrials, PerTrialHooksRunSeriallyInTrialOrder) {
  const net::Network network = small_net();
  SyncTrialConfig config;
  config.trials = 9;
  config.threads = 4;
  config.engine.max_slots = 100000;
  // Unsynchronized state: safe because hooks run on the calling thread,
  // in trial order, before any trial executes.
  std::vector<std::size_t> order;
  config.per_trial = [&order](std::size_t t, sim::SlotEngineConfig&) {
    order.push_back(t);
  };
  const SyncTrialStats stats =
      run_sync_trials(network, core::make_algorithm3(8), config);
  EXPECT_EQ(stats.trials, 9u);
  ASSERT_EQ(order.size(), 9u);
  for (std::size_t t = 0; t < order.size(); ++t) EXPECT_EQ(order[t], t);
}

TEST(ParallelSyncTrials, RecordsWallClockAndThroughput) {
  const net::Network network = small_net();
  SyncTrialConfig config;
  config.trials = 6;
  config.engine.max_slots = 100000;
  const auto before = trial_throughput_totals();
  const SyncTrialStats stats =
      run_sync_trials(network, core::make_algorithm1(8), config);
  EXPECT_GT(stats.elapsed_seconds, 0.0);
  EXPECT_GT(stats.trials_per_second(), 0.0);
  const auto after = trial_throughput_totals();
  EXPECT_EQ(after.runs, before.runs + 1);
  EXPECT_EQ(after.trials, before.trials + 6);
  EXPECT_GE(after.busy_seconds, before.busy_seconds);
}

TEST(ParallelAsyncTrials, SerialAndParallelAreBitIdentical) {
  const net::Network network = small_net();
  AsyncTrialConfig config;
  config.trials = 10;
  config.seed = 9;
  config.engine.frame_length = 3.0;
  config.engine.max_real_time = 1e6;

  config.threads = 1;
  const AsyncTrialStats serial =
      run_async_trials(network, core::make_algorithm4(8), config);
  config.threads = 4;
  const AsyncTrialStats parallel =
      run_async_trials(network, core::make_algorithm4(8), config);
  expect_identical(serial, parallel);
}

TEST(ParallelAsyncTrials, EdgeTrialCounts) {
  const net::Network network = small_net();
  for (const std::size_t trials : {1ul, 4ul, 7ul}) {
    AsyncTrialConfig config;
    config.trials = trials;
    config.seed = 11;
    config.engine.frame_length = 3.0;
    config.engine.max_real_time = 1e6;

    config.threads = 1;
    const AsyncTrialStats serial =
        run_async_trials(network, core::make_algorithm4(8), config);
    config.threads = 4;
    const AsyncTrialStats parallel =
        run_async_trials(network, core::make_algorithm4(8), config);
    expect_identical(serial, parallel);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (const std::size_t count : {0ul, 1ul, 3ul, 4ul, 100ul}) {
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << count;
    }
  }
}

TEST(ThreadPool, SubmitAndWaitIdleDrainsAllTasks) {
  util::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, DestructorRunsPendingTasks) {
  std::atomic<int> done{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(32,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must remain usable afterwards.
  std::atomic<int> done{0};
  pool.parallel_for(8, [&done](std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 8);
}

TEST(DefaultTrialThreads, SettableAndResolves) {
  const std::size_t original = default_trial_threads();
  EXPECT_GE(original, 1u);
  set_default_trial_threads(3);
  EXPECT_EQ(default_trial_threads(), 3u);
  set_default_trial_threads(0);  // back to hardware concurrency
  EXPECT_EQ(default_trial_threads(), util::ThreadPool::default_threads());
}

}  // namespace
}  // namespace m2hew::runner
