// Contract tests for net::TopologyProvider (net/topology_provider.hpp).
//
// Structural properties first: StaticTopologyProvider wraps by reference,
// a single-epoch EpochTopologyProvider degenerates to the static case
// (union IS epoch 0), schedules are a pure function of (config, seed),
// and the union network contains every epoch's arcs.
//
// Then the load-bearing equivalence: a *frozen* multi-epoch schedule
// (speed 0, so every epoch carries the same link set) must be
// bit-identical to running the plain static engine on a network built
// from the same topology and assignment — across the slot, async and
// multi-radio engines and the SoA kernel, with randomized fault plans,
// loss, interference and start patterns. This proves the per-epoch
// adjacency swap (and the SoA active-arc mask) is a pure filter: when it
// filters nothing, nothing changes — the dynamic path costs no
// correctness relative to the static one.
#include "net/topology_provider.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "core/algorithms.hpp"
#include "core/multi_radio.hpp"
#include "core/policy_spec.hpp"
#include "core/termination.hpp"
#include "net/channel_assign.hpp"
#include "net/mobility.hpp"
#include "net/network.hpp"
#include "sim/async_engine.hpp"
#include "sim/clock.hpp"
#include "sim/fault_plan.hpp"
#include "sim/multi_radio_engine.hpp"
#include "sim/slot_engine.hpp"
#include "sim/soa_kernel.hpp"
#include "util/rng.hpp"

namespace m2hew {
namespace {

// Soak runs (ci.yml) export M2HEW_SOAK_SEED to shift every scenario seed,
// widening property coverage across scheduled runs without code changes.
[[nodiscard]] std::uint64_t soak_offset() {
  const char* env = std::getenv("M2HEW_SOAK_SEED");
  return env == nullptr ? 0 : std::strtoull(env, nullptr, 10);
}

[[nodiscard]] net::MobilityConfig mobile_config(net::NodeId n, double speed,
                                                std::size_t epochs) {
  net::MobilityConfig config;
  config.nodes = n;
  config.side = 1.0;
  config.radius = 0.45;
  config.speed_min = speed / 2.0;
  config.speed_max = speed;
  config.pause_epochs = 1;
  config.epochs = epochs;
  return config;
}

// Randomized fault plan over the first `horizon` time units, same recipe
// as engine_equivalence_test: the frozen-schedule identity must hold with
// ANY plan attached.
template <typename Time>
[[nodiscard]] sim::FaultPlan<Time> make_fault_plan(std::uint64_t seed,
                                                   net::NodeId n,
                                                   double horizon) {
  sim::FaultPlan<Time> plan;
  util::Rng rng(seed ^ 0xFA157);
  if (seed % 2 == 0) {
    plan.churn.crash_probability = 0.3 + 0.2 * static_cast<double>(seed % 3);
    plan.churn.earliest_crash = static_cast<Time>(horizon * 0.05);
    plan.churn.latest_crash = static_cast<Time>(horizon * 0.5);
    plan.churn.min_down = static_cast<Time>(horizon * 0.05);
    plan.churn.max_down = static_cast<Time>(horizon * 0.3);
    plan.churn.reset_policy_on_recovery = (seed % 4) == 0;
  }
  if (seed % 3 == 0) {
    plan.burst_loss.enabled = true;
    plan.burst_loss.p_good_to_bad = 0.05;
    plan.burst_loss.p_bad_to_good = 0.2;
    plan.burst_loss.loss_good = 0.02;
    plan.burst_loss.loss_bad = 0.8;
  }
  return plan;
}

void expect_same_state(const net::Network& network,
                       const sim::DiscoveryState& a,
                       const sim::DiscoveryState& b) {
  EXPECT_EQ(a.covered_links(), b.covered_links());
  EXPECT_EQ(a.reception_count(), b.reception_count());
  for (const net::Link link : network.links()) {
    ASSERT_EQ(a.is_covered(link), b.is_covered(link))
        << "link " << link.from << "->" << link.to;
    if (a.is_covered(link)) {
      EXPECT_DOUBLE_EQ(a.first_coverage_time(link),
                       b.first_coverage_time(link))
          << "link " << link.from << "->" << link.to;
    }
  }
}

void expect_same_activity(const std::vector<sim::RadioActivity>& a,
                          const std::vector<sim::RadioActivity>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a[u].transmit, b[u].transmit) << "node " << u;
    EXPECT_EQ(a[u].receive, b[u].receive) << "node " << u;
    EXPECT_EQ(a[u].quiet, b[u].quiet) << "node " << u;
  }
}

void expect_same_robustness(const sim::RobustnessReport& a,
                            const sim::RobustnessReport& b) {
  EXPECT_EQ(a.enabled, b.enabled);
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes);
  EXPECT_EQ(a.down_at_end, b.down_at_end);
  EXPECT_EQ(a.surviving_links, b.surviving_links);
  EXPECT_EQ(a.covered_surviving_links, b.covered_surviving_links);
  EXPECT_EQ(a.ghost_entries, b.ghost_entries);
  EXPECT_EQ(a.recovered_links, b.recovered_links);
  EXPECT_EQ(a.rediscovered_links, b.rediscovered_links);
  EXPECT_DOUBLE_EQ(a.mean_rediscovery, b.mean_rediscovery);
  EXPECT_DOUBLE_EQ(a.max_rediscovery, b.max_rediscovery);
}

// Same directed arc set, independent of internal ordering.
void expect_same_arcs(const net::Network& a, const net::Network& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.topology().arc_count(), b.topology().arc_count());
  for (net::NodeId u = 0; u < a.node_count(); ++u) {
    const auto ia = a.in_links(u);
    const auto ib = b.in_links(u);
    ASSERT_EQ(ia.size(), ib.size()) << "in-degree of node " << u;
    for (std::size_t i = 0; i < ia.size(); ++i) {
      EXPECT_EQ(ia[i].from, ib[i].from) << "in-link " << i << " of " << u;
    }
  }
}

TEST(StaticTopologyProvider, WrapsNetworkByReference) {
  util::Rng rng(3);
  auto assignment = net::uniform_random_assignment(6, 6, 3, rng);
  net::Topology topology(6);
  topology.add_edge(0, 1);
  topology.add_edge(1, 2);
  topology.finalize();
  const net::Network network(std::move(topology), std::move(assignment));

  const net::StaticTopologyProvider provider(network);
  EXPECT_EQ(provider.epoch_count(), 1u);
  EXPECT_EQ(&provider.epoch(0), &network);
  EXPECT_EQ(&provider.union_network(), &network);
}

TEST(EpochTopologyProvider, SingleEpochUnionIsEpochZero) {
  util::Rng rng(5);
  const auto assignment = net::uniform_random_assignment(12, 6, 3, rng);
  const net::EpochTopologyProvider provider(
      mobile_config(12, 0.1, /*epochs=*/1), assignment, 7);
  EXPECT_EQ(provider.epoch_count(), 1u);
  // The static degenerate case: no union copy is built, so engines take
  // the zero-cost path (topology_provider_of returns nullptr for this).
  EXPECT_EQ(&provider.union_network(), &provider.epoch(0));
}

TEST(EpochTopologyProvider, ScheduleIsAPureFunctionOfConfigAndSeed) {
  util::Rng rng(11);
  const auto assignment = net::uniform_random_assignment(24, 6, 3, rng);
  const net::MobilityConfig config = mobile_config(24, 0.15, 6);

  const net::EpochTopologyProvider a(config, assignment, 99);
  const net::EpochTopologyProvider b(config, assignment, 99);
  ASSERT_EQ(a.epoch_count(), b.epoch_count());
  for (std::size_t e = 0; e < a.epoch_count(); ++e) {
    const auto pa = a.positions(e);
    const auto pb = b.positions(e);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t u = 0; u < pa.size(); ++u) {
      EXPECT_EQ(pa[u].x, pb[u].x) << "epoch " << e << " node " << u;
      EXPECT_EQ(pa[u].y, pb[u].y) << "epoch " << e << " node " << u;
    }
    expect_same_arcs(a.epoch(e), b.epoch(e));
  }
  expect_same_arcs(a.union_network(), b.union_network());

  // A different seed places nodes elsewhere.
  const net::EpochTopologyProvider c(config, assignment, 100);
  bool any_differs = false;
  for (std::size_t u = 0; u < 24; ++u) {
    any_differs |= a.positions(0)[u].x != c.positions(0)[u].x;
  }
  EXPECT_TRUE(any_differs);
}

TEST(EpochTopologyProvider, UnionContainsEveryEpochArc) {
  util::Rng rng(17);
  const auto assignment = net::uniform_random_assignment(32, 6, 3, rng);
  const net::EpochTopologyProvider provider(mobile_config(32, 0.2, 8),
                                            assignment, 21);
  const net::Network& u_net = provider.union_network();
  for (std::size_t e = 0; e < provider.epoch_count(); ++e) {
    const net::Network& epoch = provider.epoch(e);
    for (net::NodeId u = 0; u < epoch.node_count(); ++u) {
      for (const net::Network::InLink& in : epoch.in_links(u)) {
        EXPECT_NE(u_net.in_span(in.from, u), nullptr)
            << "epoch " << e << " arc " << in.from << "->" << u
            << " missing from the union";
      }
    }
  }
}

TEST(EpochTopologyProvider, ZeroSpeedFreezesTheSchedule) {
  util::Rng rng(23);
  const auto assignment = net::uniform_random_assignment(20, 6, 3, rng);
  const net::EpochTopologyProvider provider(mobile_config(20, 0.0, 5),
                                            assignment, 31);
  for (std::size_t e = 1; e < provider.epoch_count(); ++e) {
    for (std::size_t u = 0; u < 20; ++u) {
      EXPECT_EQ(provider.positions(e)[u].x, provider.positions(0)[u].x);
      EXPECT_EQ(provider.positions(e)[u].y, provider.positions(0)[u].y);
    }
    expect_same_arcs(provider.epoch(e), provider.epoch(0));
  }
  expect_same_arcs(provider.union_network(), provider.epoch(0));
}

// ---------------------------------------------------------------------------
// Frozen-schedule equivalence: a speed-0 multi-epoch provider (the union
// is a genuinely separate Network object and the per-epoch swap runs at
// every boundary) must match the plain static engine bit for bit.

struct FrozenFixture {
  std::unique_ptr<net::EpochTopologyProvider> provider;
  std::unique_ptr<net::Network> static_network;
  net::NodeId n = 0;
  std::uint64_t epoch_length = 0;
};

[[nodiscard]] FrozenFixture make_frozen(std::uint64_t seed) {
  FrozenFixture f;
  util::Rng rng(seed ^ 0xF80);
  f.n = static_cast<net::NodeId>(12 + 4 * (seed % 3));
  const auto assignment =
      (seed % 3 == 0)
          ? net::variable_size_random_assignment(f.n, 7, 2, 5, rng)
          : net::uniform_random_assignment(f.n, 6, 3, rng);
  f.provider = std::make_unique<net::EpochTopologyProvider>(
      mobile_config(f.n, 0.0, 2 + seed % 3), assignment, seed);
  // Same arcs, same assignment, but a Network built the static way.
  net::Topology topology = f.provider->epoch(0).topology();
  f.static_network =
      std::make_unique<net::Network>(std::move(topology), assignment);
  f.epoch_length = 60 + 20 * (seed % 3);
  return f;
}

class FrozenScheduleEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrozenScheduleEquivalence, SlotEngineMatchesStatic) {
  const std::uint64_t seed = GetParam() + soak_offset();
  const FrozenFixture f = make_frozen(seed);
  util::Rng rng(seed ^ 0x51);

  sim::SlotEngineConfig config;
  config.max_slots = 400;
  config.seed = seed;
  config.stop_when_complete = (seed % 2) != 0;
  config.loss_probability = (seed % 3 == 1) ? 0.25 : 0.0;
  config.starts.assign(f.n, 0);
  for (auto& s : config.starts) s = rng.uniform(25);
  config.faults = make_fault_plan<std::uint64_t>(seed, f.n, 400.0);
  if (config.faults.burst_loss.enabled) config.loss_probability = 0.0;

  const sim::SyncPolicyFactory factory =
      (seed % 2 == 0) ? core::make_algorithm3(8)
                      : core::with_termination(core::make_algorithm2(), 80);

  sim::SlotEngineConfig mobile = config;
  mobile.topology = f.provider.get();
  mobile.epoch_length = f.epoch_length;

  const auto a =
      sim::run_slot_engine(f.provider->union_network(), factory, mobile);
  const auto b = sim::run_slot_engine(*f.static_network, factory, config);

  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.completion_slot, b.completion_slot);
  EXPECT_EQ(a.slots_executed, b.slots_executed);
  expect_same_activity(a.activity, b.activity);
  expect_same_state(*f.static_network, a.state, b.state);
  expect_same_robustness(a.robustness, b.robustness);
}

TEST_P(FrozenScheduleEquivalence, AsyncEngineMatchesStatic) {
  const std::uint64_t seed = GetParam() + soak_offset();
  const FrozenFixture f = make_frozen(seed);
  util::Rng rng(seed ^ 0xA5);

  sim::AsyncEngineConfig config;
  config.frame_length = 3.0;
  config.slots_per_frame = 3;
  config.max_real_time = 400.0;
  config.max_frames_per_node = 4000;
  config.seed = seed;
  config.stop_when_complete = (seed % 2) == 0;
  config.loss_probability = (seed % 3 == 2) ? 0.2 : 0.0;
  config.starts.assign(f.n, 0.0);
  for (auto& t : config.starts) t = rng.uniform_double() * 10.0;
  config.faults = make_fault_plan<double>(seed, f.n, 400.0);
  if (config.faults.burst_loss.enabled) config.loss_probability = 0.0;
  config.clock_builder = [](net::NodeId, std::uint64_t clock_seed) {
    sim::PiecewiseDriftClock::Config drift;
    drift.max_drift = 0.1;
    drift.min_segment = 10.0;
    drift.max_segment = 40.0;
    return std::make_unique<sim::PiecewiseDriftClock>(drift, clock_seed);
  };

  const sim::AsyncPolicyFactory factory = core::make_algorithm4(6);

  sim::AsyncEngineConfig mobile = config;
  mobile.topology = f.provider.get();
  mobile.epoch_length = static_cast<double>(f.epoch_length);

  const auto a =
      sim::run_async_engine(f.provider->union_network(), factory, mobile);
  const auto b = sim::run_async_engine(*f.static_network, factory, config);

  EXPECT_EQ(a.complete, b.complete);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  EXPECT_DOUBLE_EQ(a.t_s, b.t_s);
  EXPECT_EQ(a.frames_started, b.frames_started);
  expect_same_activity(a.activity, b.activity);
  expect_same_state(*f.static_network, a.state, b.state);
  expect_same_robustness(a.robustness, b.robustness);
}

TEST_P(FrozenScheduleEquivalence, MultiRadioEngineMatchesStatic) {
  const std::uint64_t seed = GetParam() + soak_offset();
  const FrozenFixture f = make_frozen(seed);
  util::Rng rng(seed ^ 0x3D);

  sim::MultiRadioEngineConfig config;
  config.max_slots = 300;
  config.seed = seed;
  config.stop_when_complete = (seed % 2) != 0;
  config.loss_probability = (seed % 3 == 1) ? 0.2 : 0.0;
  config.starts.assign(f.n, 0);
  for (auto& s : config.starts) s = rng.uniform(20);
  config.faults = make_fault_plan<std::uint64_t>(seed, f.n, 300.0);
  if (config.faults.burst_loss.enabled) config.loss_probability = 0.0;

  const sim::MultiRadioPolicyFactory factory =
      core::make_multi_radio_alg3(2, 8);

  sim::MultiRadioEngineConfig mobile = config;
  mobile.topology = f.provider.get();
  mobile.epoch_length = f.epoch_length;

  const auto a = sim::run_multi_radio_engine(f.provider->union_network(),
                                             factory, mobile);
  const auto b = sim::run_multi_radio_engine(*f.static_network, factory,
                                             config);

  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.completion_slot, b.completion_slot);
  EXPECT_EQ(a.slots_executed, b.slots_executed);
  expect_same_activity(a.activity, b.activity);
  expect_same_state(*f.static_network, a.state, b.state);
  expect_same_robustness(a.robustness, b.robustness);
}

TEST_P(FrozenScheduleEquivalence, SoaKernelMatchesStatic) {
  const std::uint64_t seed = GetParam() + soak_offset();
  const FrozenFixture f = make_frozen(seed);
  util::Rng rng(seed ^ 0x50A);

  sim::SlotEngineConfig config;
  config.max_slots = 400;
  config.seed = seed;
  config.stop_when_complete = (seed % 2) != 0;
  config.loss_probability = (seed % 3 == 1) ? 0.25 : 0.0;
  config.starts.assign(f.n, 0);
  for (auto& s : config.starts) s = rng.uniform(25);
  config.faults = make_fault_plan<std::uint64_t>(seed, f.n, 400.0);
  if (config.faults.burst_loss.enabled) config.loss_probability = 0.0;

  const core::SyncPolicySpec spec =
      (seed % 2 == 0) ? core::SyncPolicySpec::algorithm3(8)
                      : core::SyncPolicySpec::algorithm2();

  sim::SlotEngineConfig mobile = config;
  mobile.topology = f.provider.get();
  mobile.epoch_length = f.epoch_length;

  const net::Network& u_net = f.provider->union_network();
  const auto a = sim::run_soa_slot_kernel(
      u_net, core::build_soa_policy_table(u_net, spec), mobile);
  const auto b = sim::run_soa_slot_kernel(
      *f.static_network,
      core::build_soa_policy_table(*f.static_network, spec), config);

  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.completion_slot, b.completion_slot);
  EXPECT_EQ(a.slots_executed, b.slots_executed);
  EXPECT_EQ(a.receptions, b.receptions);
  EXPECT_EQ(a.covered_links, b.covered_links);
  for (const net::Link link : f.static_network->links()) {
    ASSERT_EQ(a.is_covered(link), b.is_covered(link))
        << "link " << link.from << "->" << link.to;
    if (a.is_covered(link)) {
      EXPECT_DOUBLE_EQ(a.first_coverage_slot(link),
                       b.first_coverage_slot(link))
          << "link " << link.from << "->" << link.to;
    }
  }
  expect_same_robustness(a.robustness, b.robustness);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FrozenScheduleEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace m2hew
