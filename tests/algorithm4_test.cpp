#include "core/algorithm4.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace m2hew::core {
namespace {

TEST(Algorithm4, ProbabilityMatchesFormula) {
  const net::ChannelSet a(16, {0, 1, 2});
  // p = min(1/2, 3/(3·4)) = 1/4.
  EXPECT_DOUBLE_EQ(Algorithm4Policy(a, 4).transmit_probability(), 0.25);
  // p capped at 1/2 when |A| is large relative to Δ_est.
  const net::ChannelSet big(16, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  EXPECT_DOUBLE_EQ(Algorithm4Policy(big, 4).transmit_probability(), 0.5);
}

TEST(Algorithm4, SlotCountAblationScalesProbability) {
  const net::ChannelSet a(16, {0, 1, 2});
  EXPECT_DOUBLE_EQ(Algorithm4Policy(a, 3, 1).transmit_probability(), 0.5);
  EXPECT_DOUBLE_EQ(Algorithm4Policy(a, 3, 5).transmit_probability(),
                   3.0 / 15.0);
}

TEST(Algorithm4, FrameRateMatchesP) {
  const net::ChannelSet a(8, {0, 1, 2});
  Algorithm4Policy policy(a, 4);  // p = 0.25
  util::Rng rng(1);
  int tx = 0;
  constexpr int kFrames = 40000;
  for (int i = 0; i < kFrames; ++i) {
    const auto action = policy.next_frame(rng);
    EXPECT_TRUE(a.contains(action.channel));
    if (action.mode == sim::Mode::kTransmit) ++tx;
  }
  EXPECT_NEAR(tx / static_cast<double>(kFrames), 0.25, 0.01);
}

TEST(Algorithm4, ChannelChoiceUniform) {
  const net::ChannelSet a(8, {1, 5});
  Algorithm4Policy policy(a, 8);
  util::Rng rng(2);
  std::map<net::ChannelId, int> counts;
  constexpr int kFrames = 20000;
  for (int i = 0; i < kFrames; ++i) ++counts[policy.next_frame(rng).channel];
  EXPECT_NEAR(counts[1], kFrames / 2.0, 400.0);
  EXPECT_NEAR(counts[5], kFrames / 2.0, 400.0);
}

TEST(Algorithm4Death, InvalidInputsAbort) {
  const net::ChannelSet empty(4);
  EXPECT_DEATH(Algorithm4Policy(empty, 4), "CHECK failed");
  const net::ChannelSet a(4, {0});
  EXPECT_DEATH(Algorithm4Policy(a, 0), "CHECK failed");
  EXPECT_DEATH(Algorithm4Policy(a, 4, 0), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::core
