// Streaming reduction and worker wire format (runner/streaming.hpp):
// hexfloat codec exactness, protocol strictness, and order-independence of
// the reorder-buffer fold.
#include "runner/streaming.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <vector>

namespace m2hew::runner {
namespace {

[[nodiscard]] TrialOutcomeRecord sample_record(std::size_t trial) {
  TrialOutcomeRecord record;
  record.trial = trial;
  record.complete = trial % 3 != 0;
  // Deliberately awkward doubles: non-dyadic fractions and huge values
  // that would lose bits through a %g round-trip.
  record.completion_slot = 0.1 + static_cast<double>(trial) * 1e15;
  record.fault_enabled = trial % 2 == 0;
  record.surviving_links = 10 + trial;
  record.covered_surviving_links = 3 + trial;
  record.ghost_entries = trial;
  record.recovered_links = 2;
  record.rediscovered_links = trial % 2;
  record.mean_rediscovery = 1.0 / 3.0 + static_cast<double>(trial);
  record.adversary = trial % 2 == 0;
  record.real_entries = 20 + trial;
  record.fake_entries = trial / 2;
  record.isolated_fakes = trial / 3;
  record.honest_isolated = trial % 4;
  record.mean_isolation = 2.0 / 7.0 + static_cast<double>(trial);
  return record;
}

void expect_identical(const TrialOutcomeRecord& a,
                      const TrialOutcomeRecord& b) {
  EXPECT_EQ(a.trial, b.trial);
  EXPECT_EQ(a.complete, b.complete);
  // Bit-for-bit, not approximately: the wire format exists to make the
  // daemon's fold read exactly the doubles the worker computed.
  EXPECT_EQ(std::memcmp(&a.completion_slot, &b.completion_slot,
                        sizeof(double)),
            0);
  EXPECT_EQ(a.fault_enabled, b.fault_enabled);
  EXPECT_EQ(a.surviving_links, b.surviving_links);
  EXPECT_EQ(a.covered_surviving_links, b.covered_surviving_links);
  EXPECT_EQ(a.ghost_entries, b.ghost_entries);
  EXPECT_EQ(a.recovered_links, b.recovered_links);
  EXPECT_EQ(a.rediscovered_links, b.rediscovered_links);
  EXPECT_EQ(
      std::memcmp(&a.mean_rediscovery, &b.mean_rediscovery, sizeof(double)),
      0);
  EXPECT_EQ(a.adversary, b.adversary);
  EXPECT_EQ(a.real_entries, b.real_entries);
  EXPECT_EQ(a.fake_entries, b.fake_entries);
  EXPECT_EQ(a.isolated_fakes, b.isolated_fakes);
  EXPECT_EQ(a.honest_isolated, b.honest_isolated);
  EXPECT_EQ(
      std::memcmp(&a.mean_isolation, &b.mean_isolation, sizeof(double)), 0);
}

TEST(WireFormat, RecordRoundTripsBitExactly) {
  for (std::size_t trial = 0; trial < 16; ++trial) {
    const TrialOutcomeRecord record = sample_record(trial);
    const auto decoded = decode_outcome_record(encode_outcome_record(record));
    ASSERT_TRUE(decoded.has_value());
    expect_identical(record, *decoded);
  }
}

TEST(WireFormat, ExtremeDoublesRoundTrip) {
  TrialOutcomeRecord record = sample_record(1);
  for (const double value :
       {0.0, -0.0, 5e-324 /* min subnormal */, 1.7976931348623157e308,
        std::nextafter(1.0, 2.0)}) {
    record.completion_slot = value;
    record.mean_rediscovery = value;
    const auto decoded = decode_outcome_record(encode_outcome_record(record));
    ASSERT_TRUE(decoded.has_value());
    expect_identical(record, *decoded);
  }
}

TEST(WireFormat, RejectsMalformedLines) {
  const std::string good = encode_outcome_record(sample_record(4));
  EXPECT_TRUE(decode_outcome_record(good).has_value());
  EXPECT_FALSE(decode_outcome_record("").has_value());
  EXPECT_FALSE(decode_outcome_record("R").has_value());
  EXPECT_FALSE(decode_outcome_record("X " + good.substr(2)).has_value());
  EXPECT_FALSE(decode_outcome_record(good + " junk").has_value());
  // A missing field is malformed. (Merely truncating characters off a
  // trailing hexfloat is NOT — it parses as a different valid double —
  // which is exactly why drain_workers drops partial lines at EOF before
  // they ever reach the decoder.)
  EXPECT_FALSE(
      decode_outcome_record(good.substr(0, good.find_last_of(' ')))
          .has_value());
  // Booleans must be 0/1, not arbitrary ints — all three of them
  // (complete, fault_enabled, adversary; whitespace-split token indices
  // 2, 4 and 11 of the R line).
  for (const std::size_t token : {2u, 4u, 11u}) {
    std::vector<std::string> tokens;
    std::size_t start = 0;
    while (start < good.size()) {
      const std::size_t space = good.find(' ', start);
      tokens.push_back(good.substr(start, space - start));
      if (space == std::string::npos) break;
      start = space + 1;
    }
    ASSERT_EQ(tokens.size(), 17u);
    tokens[token] = "2";
    std::string corrupted;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (i > 0) corrupted += ' ';
      corrupted += tokens[i];
    }
    EXPECT_FALSE(decode_outcome_record(corrupted).has_value())
        << "token " << token << ": " << corrupted;
  }
}

TEST(WireFormat, EndMarkerRoundTripsAndRejects) {
  const auto decoded = decode_end_marker(encode_end_marker(3, 17));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, 3u);
  EXPECT_EQ(decoded->second, 17u);
  EXPECT_FALSE(decode_end_marker("E 3").has_value());
  EXPECT_FALSE(decode_end_marker("E 3 17 junk").has_value());
  EXPECT_FALSE(decode_end_marker("R 3 17").has_value());
}

[[nodiscard]] SyncTrialStats reduce_in_order(
    const std::vector<TrialOutcomeRecord>& records) {
  StreamingSyncReducer reducer(records.size());
  std::vector<TrialOutcomeRecord> sorted = records;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.trial < b.trial; });
  for (const auto& record : sorted) EXPECT_TRUE(reducer.offer(record));
  return reducer.finish(0.0, 1);
}

void expect_same_aggregate(const SyncTrialStats& a, const SyncTrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.completed, b.completed);
  ASSERT_EQ(a.completion_slots.count(), b.completion_slots.count());
  const auto sa = a.completion_slots.summarize();
  const auto sb = b.completion_slots.summarize();
  EXPECT_EQ(sa.mean, sb.mean);  // bit equality: same values, same order
  EXPECT_EQ(sa.p95, sb.p95);
  EXPECT_EQ(a.robustness.fault_trials, b.robustness.fault_trials);
  EXPECT_EQ(a.robustness.surviving_recall.summarize().mean,
            b.robustness.surviving_recall.summarize().mean);
  EXPECT_EQ(a.robustness.ghost_entries.summarize().mean,
            b.robustness.ghost_entries.summarize().mean);
  EXPECT_EQ(a.robustness.recovered_links, b.robustness.recovered_links);
  EXPECT_EQ(a.robustness.rediscovered_links,
            b.robustness.rediscovered_links);
}

TEST(StreamingSyncReducer, ArrivalOrderDoesNotMatter) {
  constexpr std::size_t kTrials = 64;
  std::vector<TrialOutcomeRecord> records;
  records.reserve(kTrials);
  for (std::size_t t = 0; t < kTrials; ++t) {
    records.push_back(sample_record(t));
  }
  const SyncTrialStats in_order = reduce_in_order(records);

  std::mt19937 shuffle_rng(7);
  for (int round = 0; round < 5; ++round) {
    std::shuffle(records.begin(), records.end(), shuffle_rng);
    StreamingSyncReducer reducer(kTrials);
    for (const auto& record : records) {
      EXPECT_TRUE(reducer.offer(record));
    }
    EXPECT_TRUE(reducer.all_received());
    EXPECT_EQ(reducer.buffered(), 0u);
    expect_same_aggregate(reducer.finish(0.0, 4), in_order);
  }
}

TEST(StreamingSyncReducer, RejectsDuplicatesAndOutOfRange) {
  StreamingSyncReducer reducer(4);
  EXPECT_TRUE(reducer.offer(sample_record(2)));
  EXPECT_FALSE(reducer.offer(sample_record(2)));  // duplicate
  EXPECT_FALSE(reducer.offer(sample_record(9)));  // out of range
  EXPECT_EQ(reducer.received(), 1u);
}

TEST(StreamingSyncReducer, ReportsMissingTrials) {
  StreamingSyncReducer reducer(5);
  EXPECT_TRUE(reducer.offer(sample_record(1)));
  EXPECT_TRUE(reducer.offer(sample_record(4)));
  EXPECT_FALSE(reducer.all_received());
  const std::vector<std::size_t> missing = reducer.missing_trials();
  ASSERT_EQ(missing.size(), 3u);
  EXPECT_EQ(missing[0], 0u);
  EXPECT_EQ(missing[1], 2u);
  EXPECT_EQ(missing[2], 3u);
}

TEST(StreamingSyncReducer, ReorderWindowStaysSmallForRoundRobinShards) {
  // Workers w = t mod W interleave; worst-case buffering is about W
  // records, never O(trials).
  constexpr std::size_t kTrials = 1000;
  constexpr std::size_t kWorkers = 4;
  StreamingSyncReducer reducer(kTrials);
  std::size_t worst = 0;
  // Simulate round-robin arrival with worker w one step "ahead" of w+1.
  std::vector<std::size_t> cursor(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) cursor[w] = w;
  std::size_t remaining = kTrials;
  std::size_t turn = kWorkers - 1;  // start with the furthest-behind shard last
  while (remaining > 0) {
    turn = (turn + 1) % kWorkers;
    if (cursor[turn] >= kTrials) continue;
    EXPECT_TRUE(reducer.offer(sample_record(cursor[turn])));
    cursor[turn] += kWorkers;
    --remaining;
    worst = std::max(worst, reducer.buffered());
  }
  EXPECT_TRUE(reducer.all_received());
  EXPECT_LE(worst, kWorkers);
  (void)reducer.finish(0.0, kWorkers);
}

}  // namespace
}  // namespace m2hew::runner
