#include "core/termination.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/adaptive.hpp"
#include "core/algorithms.hpp"
#include "net/topology_gen.hpp"
#include "sim/slot_engine.hpp"

namespace m2hew::core {
namespace {

class AlwaysReceive final : public sim::SyncPolicy {
 public:
  sim::SlotAction next_slot(util::Rng&) override {
    return {sim::Mode::kReceive, 0};
  }
};

TEST(TerminatingSyncPolicy, GoesQuietAfterThreshold) {
  TerminatingSyncPolicy policy(std::make_unique<AlwaysReceive>(), 5);
  util::Rng rng(1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(policy.next_slot(rng).mode, sim::Mode::kReceive);
  }
  EXPECT_TRUE(policy.terminated());
  EXPECT_EQ(policy.termination_slot(), 5u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy.next_slot(rng).mode, sim::Mode::kQuiet);
  }
}

TEST(TerminatingSyncPolicy, BeaconTransmitsRoundRobinAfterTermination) {
  // Period 4 over channels {1, 3, 5}: the node transmits on every 4th
  // post-termination slot, cycling 1, 3, 5, 1, ... and is quiet otherwise.
  TerminatingSyncPolicy policy(std::make_unique<AlwaysReceive>(), 3,
                               net::ChannelSet(6, {1, 3, 5}), 4);
  util::Rng rng(1);
  for (int i = 0; i < 3; ++i) (void)policy.next_slot(rng);
  ASSERT_TRUE(policy.terminated());
  const std::vector<net::ChannelId> expected = {1, 3, 5, 1, 3, 5};
  std::size_t beacons = 0;
  for (int slot = 1; slot <= 24; ++slot) {
    const sim::SlotAction action = policy.next_slot(rng);
    if (slot % 4 == 0) {
      ASSERT_EQ(action.mode, sim::Mode::kTransmit) << "slot " << slot;
      ASSERT_LT(beacons, expected.size());
      EXPECT_EQ(action.channel, expected[beacons]) << "slot " << slot;
      ++beacons;
    } else {
      EXPECT_EQ(action.mode, sim::Mode::kQuiet) << "slot " << slot;
    }
  }
  EXPECT_EQ(beacons, 6u);
}

TEST(TerminatingSyncPolicy, BeaconDrawsNoRandomness) {
  // The beacon schedule is deterministic: a terminated node must not touch
  // its RNG, or it would perturb replay of the node's random stream.
  TerminatingSyncPolicy policy(std::make_unique<AlwaysReceive>(), 2,
                               net::ChannelSet(4, {0, 2}), 3);
  util::Rng rng(99);
  util::Rng untouched(99);
  for (int i = 0; i < 30; ++i) (void)policy.next_slot(rng);
  EXPECT_TRUE(policy.terminated());
  EXPECT_EQ(rng.uniform(1u << 20), untouched.uniform(1u << 20));
}

TEST(TerminatingSyncPolicy, ZeroPeriodOrEmptySetMeansPlainTermination) {
  TerminatingSyncPolicy zero_period(std::make_unique<AlwaysReceive>(), 2,
                                    net::ChannelSet(4, {0, 2}), 0);
  TerminatingSyncPolicy empty_set(std::make_unique<AlwaysReceive>(), 2,
                                  net::ChannelSet(4), 5);
  util::Rng rng(1);
  for (int i = 0; i < 2; ++i) {
    (void)zero_period.next_slot(rng);
    (void)empty_set.next_slot(rng);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(zero_period.next_slot(rng).mode, sim::Mode::kQuiet);
    EXPECT_EQ(empty_set.next_slot(rng).mode, sim::Mode::kQuiet);
  }
}

TEST(TerminatingSyncPolicy, BeaconFactoryUsesNodeAvailableSet) {
  // with_termination_beacon wires each node's A(u) as its beacon set.
  const net::Network network(
      net::make_clique(2),
      {net::ChannelSet(5, {2, 4}), net::ChannelSet(5, {0, 1, 2, 3, 4})});
  const sim::SyncPolicyFactory factory =
      with_termination_beacon(core::make_algorithm1(4), 3, 2);
  const auto policy = factory(network, 0);
  util::Rng rng(7);
  for (int i = 0; i < 3; ++i) (void)policy->next_slot(rng);
  std::vector<net::ChannelId> beacon_channels;
  for (int i = 0; i < 8; ++i) {
    const sim::SlotAction action = policy->next_slot(rng);
    if (action.mode == sim::Mode::kTransmit) {
      beacon_channels.push_back(action.channel);
    }
  }
  EXPECT_EQ(beacon_channels,
            (std::vector<net::ChannelId>{2, 4, 2, 4}));
}

TEST(TerminatingSyncPolicy, NewNeighborResetsSilence) {
  TerminatingSyncPolicy policy(std::make_unique<AlwaysReceive>(), 5);
  util::Rng rng(1);
  for (int i = 0; i < 4; ++i) (void)policy.next_slot(rng);
  policy.observe_reception(3, /*first_time=*/true);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(policy.next_slot(rng).mode, sim::Mode::kReceive);
    EXPECT_FALSE(policy.terminated());
  }
  (void)policy.next_slot(rng);
  EXPECT_TRUE(policy.terminated());
}

TEST(TerminatingSyncPolicy, RepeatReceptionDoesNotReset) {
  TerminatingSyncPolicy policy(std::make_unique<AlwaysReceive>(), 3);
  util::Rng rng(1);
  (void)policy.next_slot(rng);
  policy.observe_reception(1, /*first_time=*/false);
  (void)policy.next_slot(rng);
  (void)policy.next_slot(rng);
  EXPECT_TRUE(policy.terminated());
}

TEST(TerminatingSyncPolicy, SameSlotReceptionRescindsTermination) {
  TerminatingSyncPolicy policy(std::make_unique<AlwaysReceive>(), 3);
  util::Rng rng(1);
  for (int i = 0; i < 3; ++i) (void)policy.next_slot(rng);
  ASSERT_TRUE(policy.terminated());
  // The reception from the threshold slot arrives after the action was
  // chosen; the node was still listening, so it keeps going.
  policy.observe_reception(2, /*first_time=*/true);
  EXPECT_FALSE(policy.terminated());
  EXPECT_EQ(policy.next_slot(rng).mode, sim::Mode::kReceive);
}

TEST(TerminatingSyncPolicy, ForwardsListenOutcomesToInner) {
  // Regression: the wrapper used to swallow observe_listen_outcome, so a
  // collision-detecting inner policy wrapped by with_termination lost all
  // silence/collision feedback.
  class RecordingInner final : public sim::SyncPolicy {
   public:
    sim::SlotAction next_slot(util::Rng&) override {
      return {sim::Mode::kReceive, 0};
    }
    void observe_listen_outcome(sim::ListenOutcome outcome) override {
      outcomes.push_back(outcome);
    }
    std::vector<sim::ListenOutcome> outcomes;
  };
  auto owned = std::make_unique<RecordingInner>();
  RecordingInner* inner = owned.get();
  TerminatingSyncPolicy policy(std::move(owned), 100);
  util::Rng rng(1);
  (void)policy.next_slot(rng);
  policy.observe_listen_outcome(sim::ListenOutcome::kCollision);
  policy.observe_listen_outcome(sim::ListenOutcome::kSilence);
  policy.observe_listen_outcome(sim::ListenOutcome::kClear);
  ASSERT_EQ(inner->outcomes.size(), 3u);
  EXPECT_EQ(inner->outcomes[0], sim::ListenOutcome::kCollision);
  EXPECT_EQ(inner->outcomes[1], sim::ListenOutcome::kSilence);
  EXPECT_EQ(inner->outcomes[2], sim::ListenOutcome::kClear);
}

TEST(TerminatingSyncPolicy, AdaptiveInnerStillAdaptsWhenWrapped) {
  // Composition regression: an AdaptiveDegreePolicy under with_termination
  // semantics must keep raising its estimate on observed collisions.
  auto owned = std::make_unique<AdaptiveDegreePolicy>(
      net::ChannelSet(2, {0, 1}));
  AdaptiveDegreePolicy* adaptive = owned.get();
  const std::size_t before = adaptive->current_estimate();
  TerminatingSyncPolicy policy(std::move(owned), 1000);
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    (void)policy.next_slot(rng);
    policy.observe_listen_outcome(sim::ListenOutcome::kCollision);
  }
  EXPECT_GT(adaptive->current_estimate(), before);
}

TEST(TerminatingAsyncPolicy, FrameCountedTermination) {
  class AlwaysListenFrame final : public sim::AsyncPolicy {
   public:
    sim::FrameAction next_frame(util::Rng&) override {
      return {sim::Mode::kReceive, 0};
    }
  };
  TerminatingAsyncPolicy policy(std::make_unique<AlwaysListenFrame>(), 2);
  util::Rng rng(1);
  (void)policy.next_frame(rng);
  EXPECT_FALSE(policy.terminated());
  (void)policy.next_frame(rng);
  EXPECT_TRUE(policy.terminated());
  EXPECT_EQ(policy.next_frame(rng).mode, sim::Mode::kQuiet);
}

TEST(TerminationIntegration, GenerousThresholdStillCompletes) {
  const net::Network network(
      net::make_clique(5),
      std::vector<net::ChannelSet>(5, net::ChannelSet(3, {0, 1, 2})));
  sim::SlotEngineConfig config;
  config.max_slots = 200000;
  config.seed = 3;
  const auto result = sim::run_slot_engine(
      network, with_termination(core::make_algorithm3(6), 5000), config);
  EXPECT_TRUE(result.complete);
}

TEST(TerminationIntegration, AggressiveThresholdCanStarveNetwork) {
  const net::Network network(
      net::make_clique(8),
      std::vector<net::ChannelSet>(8, net::ChannelSet(4, {0, 1, 2, 3})));
  sim::SlotEngineConfig config;
  config.max_slots = 200000;
  config.seed = 4;
  // Threshold of 2 slots: nodes give up long before covering 4 channels ×
  // 7 neighbors, and once quiet they cannot be discovered either.
  const auto result = sim::run_slot_engine(
      network, with_termination(core::make_algorithm3(8), 2), config);
  EXPECT_FALSE(result.complete);
  // The network went fully quiet: activity beyond the early slots is idle.
  const auto total = sim::total_activity(result.activity);
  EXPECT_GT(total.quiet, total.transmit + total.receive);
}

TEST(TerminationDeath, InvalidArgumentsAbort) {
  EXPECT_DEATH(TerminatingSyncPolicy(nullptr, 5), "CHECK failed");
  EXPECT_DEATH(
      TerminatingSyncPolicy(std::make_unique<AlwaysReceive>(), 0),
      "CHECK failed");
}

}  // namespace
}  // namespace m2hew::core
