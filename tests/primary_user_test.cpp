#include "net/primary_user.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace m2hew::net {
namespace {

TEST(PrimaryUserField, OccupiedInsideDiskOnly) {
  const PrimaryUserField field(4, {{{0.5, 0.5}, 0.2, 1}});
  EXPECT_TRUE(field.occupied_at({0.5, 0.5}).contains(1));
  EXPECT_TRUE(field.occupied_at({0.5, 0.7}).contains(1));  // on the rim
  EXPECT_FALSE(field.occupied_at({0.5, 0.71}).contains(1));
  EXPECT_EQ(field.occupied_at({0.0, 0.0}).size(), 0u);
}

TEST(PrimaryUserField, MultipleUsersUnion) {
  const PrimaryUserField field(5, {
                                      {{0.0, 0.0}, 1.0, 0},
                                      {{0.0, 0.0}, 1.0, 2},
                                      {{9.0, 9.0}, 0.1, 4},
                                  });
  const ChannelSet occ = field.occupied_at({0.1, 0.1});
  EXPECT_TRUE(occ.contains(0));
  EXPECT_TRUE(occ.contains(2));
  EXPECT_FALSE(occ.contains(4));
}

TEST(PrimaryUserField, AvailableSubtractsOccupied) {
  const PrimaryUserField field(4, {{{0.0, 0.0}, 1.0, 2}});
  const ChannelSet hw = ChannelSet::full(4);
  const ChannelSet avail = field.available_at({0.0, 0.0}, hw);
  EXPECT_EQ(avail, ChannelSet(4, {0, 1, 3}));
}

TEST(PrimaryUserField, HardwareCapabilityLimits) {
  const PrimaryUserField field(4, {{{0.0, 0.0}, 1.0, 0}});
  const ChannelSet hw(4, {0, 1});
  const ChannelSet avail = field.available_at({0.0, 0.0}, hw);
  EXPECT_EQ(avail, ChannelSet(4, {1}));
}

TEST(PrimaryUserField, AssignmentForPositions) {
  const PrimaryUserField field(3, {{{0.0, 0.0}, 0.5, 1}});
  const auto assignment =
      field.assignment_for({{0.0, 0.0}, {2.0, 2.0}});
  ASSERT_EQ(assignment.size(), 2u);
  EXPECT_EQ(assignment[0], ChannelSet(3, {0, 2}));
  EXPECT_EQ(assignment[1], ChannelSet::full(3));
}

TEST(PrimaryUserField, RandomFieldRespectsConfig) {
  util::Rng rng(1);
  const PrimaryUserField field =
      PrimaryUserField::random(16, 25, 2.0, 0.1, 0.4, rng);
  EXPECT_EQ(field.users().size(), 25u);
  for (const auto& pu : field.users()) {
    EXPECT_LT(pu.channel, 16u);
    EXPECT_GE(pu.radius, 0.1);
    EXPECT_LE(pu.radius, 0.4);
    EXPECT_GE(pu.position.x, 0.0);
    EXPECT_LE(pu.position.x, 2.0);
    EXPECT_GE(pu.position.y, 0.0);
    EXPECT_LE(pu.position.y, 2.0);
  }
}

TEST(PrimaryUserField, SpatialVariationProducesHeterogeneity) {
  util::Rng rng(2);
  const PrimaryUserField field =
      PrimaryUserField::random(8, 30, 1.0, 0.2, 0.5, rng);
  // Two far-apart probes should (with this density) see different spectra.
  const ChannelSet a = field.occupied_at({0.05, 0.05});
  const ChannelSet b = field.occupied_at({0.95, 0.95});
  EXPECT_FALSE(a == b);
}

TEST(PrimaryUserField, ExactDiskBoundaryIsOccupied) {
  // Exactly-representable distances: radius 0.5 reached axially at
  // (0.5, 0) and diagonally at the 3-4-5 point (0.3, 0.4) — both must be
  // inside (the disk is closed), matching the <= in the implementation.
  const PrimaryUserField field(2, {{{0.0, 0.0}, 0.5, 0}});
  EXPECT_TRUE(field.occupied_at({0.5, 0.0}).contains(0));
  EXPECT_TRUE(field.occupied_at({0.0, -0.5}).contains(0));
  EXPECT_TRUE(field.occupied_at({0.3, 0.4}).contains(0));
  EXPECT_FALSE(field.occupied_at({0.5000001, 0.0}).contains(0));
}

TEST(PrimaryUserFieldDeath, ChannelOutsideUniverseAborts) {
  EXPECT_DEATH(PrimaryUserField(2, {{{0.0, 0.0}, 1.0, 2}}), "CHECK failed");
}

TEST(ScheduledPrimaryUserField, ActivationIntervalIsHalfOpen) {
  const ScheduledPrimaryUser pu{{{0.0, 0.0}, 1.0, 0}, 10.0, 20.0};
  EXPECT_FALSE(pu.active_at(9.999999));
  EXPECT_TRUE(pu.active_at(10.0));  // on_from is inclusive
  EXPECT_TRUE(pu.active_at(19.999999));
  EXPECT_FALSE(pu.active_at(20.0));  // on_until is exclusive
}

TEST(ScheduledPrimaryUserField, OccupiedNeedsActiveCoveringMatchingPu) {
  const ScheduledPrimaryUserField field(
      3, {{{{0.0, 0.0}, 0.5, 1}, 10.0, 20.0}});
  // Active, covered (boundary point included), right channel.
  EXPECT_TRUE(field.occupied(15.0, {0.3, 0.4}, 1));
  // Wrong channel / outside disk / outside interval.
  EXPECT_FALSE(field.occupied(15.0, {0.3, 0.4}, 0));
  EXPECT_FALSE(field.occupied(15.0, {0.6, 0.4}, 1));
  EXPECT_FALSE(field.occupied(9.0, {0.3, 0.4}, 1));
  EXPECT_FALSE(field.occupied(20.0, {0.3, 0.4}, 1));
  EXPECT_EQ(field.occupied_at(15.0, {0.0, 0.0}), ChannelSet(3, {1}));
  EXPECT_EQ(field.occupied_at(25.0, {0.0, 0.0}).size(), 0u);
}

TEST(ScheduledPrimaryUserField, RandomFieldRespectsConfig) {
  util::Rng rng(3);
  const ScheduledPrimaryUserField field = ScheduledPrimaryUserField::random(
      8, 20, 1.5, 0.1, 0.3, 1000.0, 50.0, 200.0, rng);
  EXPECT_EQ(field.users().size(), 20u);
  for (const auto& pu : field.users()) {
    EXPECT_LT(pu.user.channel, 8u);
    EXPECT_GE(pu.user.radius, 0.1);
    EXPECT_LE(pu.user.radius, 0.3);
    EXPECT_GE(pu.on_from, 0.0);
    EXPECT_LT(pu.on_from, 1000.0);
    EXPECT_GE(pu.on_until - pu.on_from, 50.0);
    EXPECT_LE(pu.on_until - pu.on_from, 200.0);
  }
}

// The interference callback is shared across trial threads by the parallel
// runner and queried at whatever times each trial has reached — i.e. out
// of time order, concurrently. It must be a pure function of (t, node,
// channel): precompute serial reference answers, then replay them from
// several threads each walking the query grid in a different order.
TEST(ScheduledPrimaryUserField, InterferenceCallbackIsPureUnderThreads) {
  util::Rng rng(11);
  const ScheduledPrimaryUserField field = ScheduledPrimaryUserField::random(
      6, 15, 1.0, 0.2, 0.5, 500.0, 20.0, 120.0, rng);
  std::vector<Point> positions;
  for (int i = 0; i < 10; ++i) {
    positions.push_back({rng.uniform_double(), rng.uniform_double()});
  }
  const auto interference = field.interference_for(positions);

  struct Query {
    double t;
    NodeId node;
    ChannelId channel;
    bool expected;
  };
  std::vector<Query> queries;
  for (double t = 0.0; t < 520.0; t += 7.0) {
    for (NodeId u = 0; u < 10; ++u) {
      for (ChannelId c = 0; c < 6; ++c) {
        queries.push_back({t, u, c, interference(t, u, c)});
      }
    }
  }

  std::vector<std::size_t> mismatches(4, 0);
  std::vector<std::thread> threads;
  for (std::size_t worker = 0; worker < 4; ++worker) {
    threads.emplace_back([&, worker] {
      // Each worker visits the grid in a different (and non-monotone in
      // time) order: strided from a different offset, reversed for odd
      // workers.
      const std::size_t count = queries.size();
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t raw = (i * 13 + worker * 101) % count;
        const std::size_t idx = (worker % 2 == 0) ? raw : count - 1 - raw;
        const Query& q = queries[idx];
        if (interference(q.t, q.node, q.channel) != q.expected) {
          ++mismatches[worker];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t worker = 0; worker < 4; ++worker) {
    EXPECT_EQ(mismatches[worker], 0u) << "worker " << worker;
  }
}

}  // namespace
}  // namespace m2hew::net
