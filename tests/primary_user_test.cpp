#include "net/primary_user.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace m2hew::net {
namespace {

TEST(PrimaryUserField, OccupiedInsideDiskOnly) {
  const PrimaryUserField field(4, {{{0.5, 0.5}, 0.2, 1}});
  EXPECT_TRUE(field.occupied_at({0.5, 0.5}).contains(1));
  EXPECT_TRUE(field.occupied_at({0.5, 0.7}).contains(1));  // on the rim
  EXPECT_FALSE(field.occupied_at({0.5, 0.71}).contains(1));
  EXPECT_EQ(field.occupied_at({0.0, 0.0}).size(), 0u);
}

TEST(PrimaryUserField, MultipleUsersUnion) {
  const PrimaryUserField field(5, {
                                      {{0.0, 0.0}, 1.0, 0},
                                      {{0.0, 0.0}, 1.0, 2},
                                      {{9.0, 9.0}, 0.1, 4},
                                  });
  const ChannelSet occ = field.occupied_at({0.1, 0.1});
  EXPECT_TRUE(occ.contains(0));
  EXPECT_TRUE(occ.contains(2));
  EXPECT_FALSE(occ.contains(4));
}

TEST(PrimaryUserField, AvailableSubtractsOccupied) {
  const PrimaryUserField field(4, {{{0.0, 0.0}, 1.0, 2}});
  const ChannelSet hw = ChannelSet::full(4);
  const ChannelSet avail = field.available_at({0.0, 0.0}, hw);
  EXPECT_EQ(avail, ChannelSet(4, {0, 1, 3}));
}

TEST(PrimaryUserField, HardwareCapabilityLimits) {
  const PrimaryUserField field(4, {{{0.0, 0.0}, 1.0, 0}});
  const ChannelSet hw(4, {0, 1});
  const ChannelSet avail = field.available_at({0.0, 0.0}, hw);
  EXPECT_EQ(avail, ChannelSet(4, {1}));
}

TEST(PrimaryUserField, AssignmentForPositions) {
  const PrimaryUserField field(3, {{{0.0, 0.0}, 0.5, 1}});
  const auto assignment =
      field.assignment_for({{0.0, 0.0}, {2.0, 2.0}});
  ASSERT_EQ(assignment.size(), 2u);
  EXPECT_EQ(assignment[0], ChannelSet(3, {0, 2}));
  EXPECT_EQ(assignment[1], ChannelSet::full(3));
}

TEST(PrimaryUserField, RandomFieldRespectsConfig) {
  util::Rng rng(1);
  const PrimaryUserField field =
      PrimaryUserField::random(16, 25, 2.0, 0.1, 0.4, rng);
  EXPECT_EQ(field.users().size(), 25u);
  for (const auto& pu : field.users()) {
    EXPECT_LT(pu.channel, 16u);
    EXPECT_GE(pu.radius, 0.1);
    EXPECT_LE(pu.radius, 0.4);
    EXPECT_GE(pu.position.x, 0.0);
    EXPECT_LE(pu.position.x, 2.0);
    EXPECT_GE(pu.position.y, 0.0);
    EXPECT_LE(pu.position.y, 2.0);
  }
}

TEST(PrimaryUserField, SpatialVariationProducesHeterogeneity) {
  util::Rng rng(2);
  const PrimaryUserField field =
      PrimaryUserField::random(8, 30, 1.0, 0.2, 0.5, rng);
  // Two far-apart probes should (with this density) see different spectra.
  const ChannelSet a = field.occupied_at({0.05, 0.05});
  const ChannelSet b = field.occupied_at({0.95, 0.95});
  EXPECT_FALSE(a == b);
}

TEST(PrimaryUserFieldDeath, ChannelOutsideUniverseAborts) {
  EXPECT_DEATH(PrimaryUserField(2, {{{0.0, 0.0}, 1.0, 2}}), "CHECK failed");
}

}  // namespace
}  // namespace m2hew::net
