// Asynchrony demo: visualizes the frame geometry of §IV for two nodes with
// drifting clocks, then measures how Algorithm 4's discovery latency reacts
// as the drift bound δ approaches and crosses the paper's Assumption 1
// (δ ≤ 1/7).
//
//   $ ./async_drift_demo
#include <cstdio>
#include <memory>

#include "core/algorithms.hpp"
#include "net/topology_gen.hpp"
#include "runner/trials.hpp"
#include "sim/clock.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

constexpr double kL = 3.0;

// Prints the first few frames of a clock as real-time intervals.
void print_frames(const char* name, sim::Clock& clock, int frames) {
  std::printf("%s frames: ", name);
  for (int k = 0; k <= frames; ++k) {
    std::printf("%s%.3f", k == 0 ? "[" : " | ", clock.real_at_local(kL * k));
  }
  std::printf("]\n");
}

[[nodiscard]] net::Network pair_network() {
  net::Topology t(2);
  t.add_edge(0, 1);
  return net::Network(std::move(t), std::vector<net::ChannelSet>(
                                        2, net::ChannelSet(4, {0, 1, 2, 3})));
}

}  // namespace

int main() {
  using namespace m2hew;

  std::printf("=== frame geometry under drift (L = %.1f, 3 slots) ===\n", kL);
  {
    sim::ConstantDriftClock fast(+1.0 / 7.0, 0.0);
    sim::ConstantDriftClock slow(-1.0 / 7.0, 0.7);
    print_frames("fast (+1/7)      ", fast, 6);
    print_frames("slow (-1/7, +off)", slow, 6);
    std::printf(
        "fast frames shrink to %.3f real seconds; slow stretch to %.3f —\n"
        "yet Lemma 7 guarantees an aligned pair within any two consecutive\n"
        "frames as long as |drift| <= 1/7.\n\n",
        kL / (1.0 + 1.0 / 7.0), kL / (1.0 - 1.0 / 7.0));
  }

  std::printf("=== Algorithm 4 latency vs drift bound ===\n");
  const net::Network network = pair_network();
  util::Table table({"delta", "trials", "completed", "mean frames",
                     "p95 frames"});
  for (const double delta :
       {0.0, 0.05, 1.0 / 7.0, 0.25, 1.0 / 3.0, 0.45}) {
    runner::AsyncTrialConfig config;
    config.trials = 40;
    config.seed = 1234;
    config.engine.frame_length = kL;
    config.engine.max_real_time = 2e5;
    config.engine.clock_builder = [delta](net::NodeId,
                                          std::uint64_t clock_seed) {
      return std::make_unique<sim::PiecewiseDriftClock>(
          sim::PiecewiseDriftClock::Config{.max_drift = delta,
                                           .min_segment = 10.0,
                                           .max_segment = 40.0},
          clock_seed);
    };
    const auto stats = runner::run_async_trials(
        network, core::make_algorithm4(2), config);
    const auto frames = stats.max_full_frames.summarize();
    table.row()
        .cell(delta, 3)
        .cell(stats.trials)
        .cell(stats.completed)
        .cell(frames.mean, 1)
        .cell(frames.p95, 1);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Algorithm 4 keeps completing even past delta = 1/7 on this friendly\n"
      "two-node instance — Assumption 1 is what the *worst-case* guarantee\n"
      "(Lemma 7's aligned-pair construction) needs, not a cliff in average\n"
      "behaviour.\n");
  const auto throughput = runner::trial_throughput_totals();
  std::printf("(%zu trials in %.3f s — %.1f trials/s on %zu workers)\n",
              throughput.trials, throughput.busy_seconds,
              throughput.trials_per_second(),
              runner::default_trial_threads());
  return 0;
}
