// Downstream application: collision-free link scheduling from discovered
// neighbor tables.
//
// The paper's introduction motivates neighbor discovery as the first step
// feeding MAC/scheduling protocols ([3], [7], [8]): "many algorithms for
// solving these problems implicitly assume that all nodes know their
// one-hop neighbors". This example closes that loop: it runs Algorithm 3
// to completion, then builds a TDMA schedule purely from the *discovered*
// tables — one (slot, channel) per directed link such that every scheduled
// transmission is collision-free — and finally verifies the schedule
// against the ground-truth network.
//
//   $ ./link_scheduling
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/algorithms.hpp"
#include "runner/scenario.hpp"
#include "sim/slot_engine.hpp"
#include "util/table.hpp"

namespace {

using namespace m2hew;

struct ScheduledLink {
  net::NodeId from = net::kInvalidNode;
  net::NodeId to = net::kInvalidNode;
  net::ChannelId channel = net::kInvalidChannel;
  std::size_t slot = 0;
};

// Greedy first-fit coloring over (slot, channel) pairs. Two scheduled
// links conflict in a slot if they share a node (half-duplex radios) or if
// they use the same channel and one's transmitter is an in-neighbor of the
// other's receiver (interference). Only information nodes could exchange
// after discovery is used: the discovered tables and the channel spans in
// them.
[[nodiscard]] std::vector<ScheduledLink> greedy_schedule(
    const net::Network& network, const sim::DiscoveryState& state) {
  // Collect the directed links each node discovered, with their spans.
  struct Pending {
    net::NodeId from;
    net::NodeId to;
    const net::ChannelSet* span;
  };
  std::vector<Pending> pending;
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    for (const sim::NeighborRecord& rec : state.neighbor_table(u)) {
      pending.push_back({rec.neighbor, u, &rec.common_channels});
    }
  }
  // Deterministic order: widest spans last so constrained links pick first.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.span->size() < b.span->size();
                   });

  std::vector<ScheduledLink> schedule;
  auto conflicts = [&](const Pending& link, std::size_t slot,
                       net::ChannelId channel) {
    for (const ScheduledLink& other : schedule) {
      if (other.slot != slot) continue;
      // Shared node: a radio cannot do two things in one slot.
      if (other.from == link.from || other.from == link.to ||
          other.to == link.from || other.to == link.to) {
        return true;
      }
      if (other.channel != channel) continue;
      // Same channel: transmitters must not be audible at the other
      // receiver.
      if (network.topology().has_arc(other.from, link.to) &&
          network.span(other.from, link.to).contains(channel)) {
        return true;
      }
      if (network.topology().has_arc(link.from, other.to) &&
          network.span(link.from, other.to).contains(channel)) {
        return true;
      }
    }
    return false;
  };

  for (const Pending& link : pending) {
    const auto channels = link.span->to_vector();
    bool placed = false;
    for (std::size_t slot = 0; !placed; ++slot) {
      for (const net::ChannelId channel : channels) {
        if (!conflicts(link, slot, channel)) {
          schedule.push_back({link.from, link.to, channel, slot});
          placed = true;
          break;
        }
      }
    }
  }
  return schedule;
}

// Simulates the schedule on the ground-truth network: in each slot all
// scheduled transmitters fire; every scheduled receiver must decode its
// message cleanly.
[[nodiscard]] bool verify_schedule(const net::Network& network,
                                   const std::vector<ScheduledLink>& schedule,
                                   std::size_t slot_count) {
  for (std::size_t slot = 0; slot < slot_count; ++slot) {
    for (const ScheduledLink& link : schedule) {
      if (link.slot != slot) continue;
      // The intended transmission must be deliverable...
      if (!network.span(link.from, link.to).contains(link.channel)) {
        return false;
      }
      // ...and no other transmitter in this slot may be audible at the
      // receiver on the same channel, nor may the receiver itself be busy.
      for (const ScheduledLink& other : schedule) {
        if (other.slot != slot ||
            (other.from == link.from && other.to == link.to)) {
          continue;
        }
        if (other.from == link.to || other.to == link.to ||
            other.from == link.from) {
          return false;  // node double-booked
        }
        if (other.channel == link.channel &&
            network.topology().has_arc(other.from, link.to) &&
            network.span(other.from, link.to).contains(link.channel)) {
          return false;  // interference
        }
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  // A heterogeneous unit-disk deployment.
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kUnitDisk;
  scenario.n = 14;
  scenario.ud_radius = 0.42;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 10;
  scenario.set_size = 4;
  const net::Network network = runner::build_scenario(scenario, 17);

  std::printf("network: %s\n", runner::describe(scenario).c_str());
  std::printf("links to schedule: %zu, max per-channel degree: %zu\n\n",
              network.links().size(), network.max_channel_degree());

  // Phase 1: neighbor discovery (Algorithm 3).
  sim::SlotEngineConfig engine;
  engine.max_slots = 2'000'000;
  engine.seed = 99;
  const auto discovery =
      sim::run_slot_engine(network, core::make_algorithm3(8), engine);
  if (!discovery.complete) {
    std::printf("discovery did not complete; aborting\n");
    return 1;
  }
  std::printf("phase 1: discovery complete after %llu slots\n",
              static_cast<unsigned long long>(discovery.completion_slot + 1));

  // Phase 2: build the TDMA schedule from discovered tables only.
  const auto schedule = greedy_schedule(network, discovery.state);
  std::size_t slot_count = 0;
  for (const auto& link : schedule) {
    slot_count = std::max(slot_count, link.slot + 1);
  }
  std::printf("phase 2: scheduled %zu links into %zu TDMA slots\n",
              schedule.size(), slot_count);

  // Phase 3: verify against ground truth.
  const bool ok = verify_schedule(network, schedule, slot_count);
  std::printf("phase 3: schedule is %s\n\n",
              ok ? "collision-free (verified against ground truth)"
                 : "BROKEN");

  util::Table table({"slot", "links scheduled"});
  for (std::size_t slot = 0; slot < slot_count; ++slot) {
    std::size_t in_slot = 0;
    for (const auto& link : schedule) {
      if (link.slot == slot) ++in_slot;
    }
    table.row().cell(slot).cell(in_slot);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nlower bound on slots: a node with k discovered links needs >= k "
      "slots;\nhere the busiest node has %zu links.\n",
      [&] {
        std::vector<std::size_t> load(network.node_count(), 0);
        for (const auto& link : schedule) {
          ++load[link.from];
          ++load[link.to];
        }
        return *std::max_element(load.begin(), load.end());
      }());
  return ok ? 0 : 1;
}
