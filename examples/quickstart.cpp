// Quickstart: build a small heterogeneous multi-channel network, run the
// paper's Algorithm 3 (synchronous, variable start times), and print each
// node's discovered neighbor table.
//
//   $ ./quickstart
#include <cstdio>

#include "core/algorithms.hpp"
#include "runner/scenario.hpp"
#include "sim/slot_engine.hpp"

int main() {
  using namespace m2hew;

  // 1. Describe the network: 8 radios in a clique, each able to use 4 of
  //    10 spectrum channels (channel sets drawn at random, so different
  //    nodes see different spectra — the M²HeW setting).
  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kClique;
  scenario.n = 8;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 10;
  scenario.set_size = 4;
  const net::Network network = runner::build_scenario(scenario, /*seed=*/7);

  std::printf("network: %s\n", runner::describe(scenario).c_str());
  std::printf("derived: S=%zu  Delta=%zu  rho=%.3f  links=%zu\n\n",
              network.max_channel_set_size(), network.max_channel_degree(),
              network.min_span_ratio(), network.links().size());

  // 2. Run neighbor discovery: Algorithm 3 with a degree bound of 8,
  //    nodes starting at staggered slots (no global start required).
  sim::SlotEngineConfig engine;
  engine.max_slots = 1'000'000;
  engine.seed = 42;
  engine.starts.assign(network.node_count(), 0);
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    engine.starts[u] = 5ull * u;
  }
  const auto result =
      sim::run_slot_engine(network, core::make_algorithm3(8), engine);

  if (!result.complete) {
    std::printf("discovery did not finish within the budget\n");
    return 1;
  }
  std::printf("discovery complete after %llu slots\n\n",
              static_cast<unsigned long long>(result.completion_slot + 1));

  // 3. Inspect the neighbor tables each node built from received messages.
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    std::printf("node %u available {", u);
    for (const auto c : network.available(u).to_vector()) {
      std::printf(" %u", c);
    }
    std::printf(" } discovered:");
    for (const auto& record : result.state.neighbor_table(u)) {
      std::printf("  %u(", record.neighbor);
      for (const auto c : record.common_channels.to_vector()) {
        std::printf("%u,", c);
      }
      std::printf(")");
    }
    std::printf("  [%s]\n", result.state.table_matches_ground_truth(u)
                                ? "matches ground truth"
                                : "INCOMPLETE");
  }
  return 0;
}
