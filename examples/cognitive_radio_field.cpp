// Cognitive-radio field study: secondary users deployed in a plane shared
// with licensed primary users. Primary users blank out channels inside
// their footprint, so each node perceives a different available channel
// set. The example runs fully-asynchronous neighbor discovery (Algorithm
// 4) with drifting clocks, then simulates a primary user switching on —
// shrinking the spectrum — and re-runs discovery on the new channel sets,
// the re-discovery workflow a real CR deployment would follow.
//
//   $ ./cognitive_radio_field
#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/algorithms.hpp"
#include "net/primary_user.hpp"
#include "net/topology_gen.hpp"
#include "sim/async_engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace m2hew;

constexpr net::ChannelId kUniverse = 12;
constexpr double kSide = 1.0;

void print_spectrum(const net::Network& network) {
  std::printf("  S=%zu Delta=%zu rho=%.3f links=%zu\n",
              network.max_channel_set_size(), network.max_channel_degree(),
              network.min_span_ratio(), network.links().size());
  for (net::NodeId u = 0; u < network.node_count(); ++u) {
    std::printf("  node %2u sees %zu/%u channels\n", u,
                network.available(u).size(), kUniverse);
  }
}

bool run_discovery(const net::Network& network, std::uint64_t seed) {
  sim::AsyncEngineConfig engine;
  engine.frame_length = 3.0;
  engine.max_real_time = 5e6;
  engine.seed = seed;
  engine.clock_builder = [](net::NodeId, std::uint64_t clock_seed) {
    return std::make_unique<sim::PiecewiseDriftClock>(
        sim::PiecewiseDriftClock::Config{.max_drift = 1.0 / 7.0,
                                         .min_segment = 30.0,
                                         .max_segment = 120.0},
        clock_seed);
  };
  const auto result =
      sim::run_async_engine(network, core::make_algorithm4(10), engine);
  if (!result.complete) {
    std::printf("  discovery DID NOT complete within budget\n");
    return false;
  }
  std::uint64_t frames = 0;
  for (const auto f : result.full_frames_since_ts) {
    frames = std::max(frames, f);
  }
  std::printf(
      "  discovery complete at t=%.1f (max %llu full frames per node)\n",
      result.completion_time, static_cast<unsigned long long>(frames));
  return true;
}

}  // namespace

int main() {
  util::Rng rng(2024);

  // Deploy 14 secondary users; connect those within radio range.
  const auto geo = net::make_connected_unit_disk(14, kSide, 0.42, rng);

  // Licensed primary users occupying channels over parts of the field.
  auto field = net::PrimaryUserField::random(kUniverse, /*count=*/8, kSide,
                                             /*min_radius=*/0.2,
                                             /*max_radius=*/0.45, rng);

  std::printf("=== initial spectrum (8 primary users active) ===\n");
  net::Network network(geo.topology, field.assignment_for(geo.positions));
  print_spectrum(network);
  if (!run_discovery(network, 1)) return 1;

  // A new primary user powers up in the middle of the field on channel 3:
  // every secondary user inside its footprint loses that channel and the
  // network must re-discover neighbors over the shrunken spectrum.
  std::printf("\n=== primary user powers up on channel 3 ===\n");
  std::vector<net::PrimaryUser> users = field.users();
  users.push_back({{0.5, 0.5}, 0.45, 3});
  const net::PrimaryUserField denser(kUniverse, std::move(users));
  auto assignment = denser.assignment_for(geo.positions);
  for (const auto& a : assignment) {
    if (a.empty()) {
      std::printf("  a node lost its entire spectrum; aborting\n");
      return 1;
    }
  }
  net::Network shrunk(geo.topology, std::move(assignment));
  print_spectrum(shrunk);
  if (!run_discovery(shrunk, 2)) return 1;

  std::printf("\nre-discovery succeeded on the reduced spectrum\n");
  return 0;
}
