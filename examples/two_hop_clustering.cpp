// Downstream application: clustering from two-hop neighbor knowledge.
//
// The paper's introduction lists clustering ([5], [6]) among the protocols
// that consume neighbor-discovery output. This example runs the full
// pipeline: one-hop discovery (Algorithm 3), a table-exchange phase for
// two-hop knowledge, then a lowest-id clustering: a node elects itself
// cluster head iff it has the smallest id in its one-hop in-neighborhood;
// other nodes join the lowest-id head they can hear. Two-hop knowledge
// lets every node also name its gateway nodes (members adjacent to foreign
// heads) — the classic structure for inter-cluster routing.
//
//   $ ./two_hop_clustering
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/two_hop.hpp"
#include "runner/scenario.hpp"
#include "sim/trace.hpp"
#include "util/table.hpp"

int main() {
  using namespace m2hew;

  runner::ScenarioConfig scenario;
  scenario.topology = runner::TopologyKind::kUnitDisk;
  scenario.n = 18;
  scenario.ud_radius = 0.35;
  scenario.channels = runner::ChannelKind::kUniformRandom;
  scenario.universe = 10;
  scenario.set_size = 5;
  const net::Network network = runner::build_scenario(scenario, 23);

  std::printf("network: %s\n\n", runner::describe(scenario).c_str());

  sim::SlotEngineConfig engine;
  engine.max_slots = 2'000'000;
  engine.seed = 11;
  const core::TwoHopResult nd =
      core::run_two_hop_discovery(network, /*delta_est=*/8, engine);
  if (!nd.complete) {
    std::printf("two-hop discovery did not complete\n");
    return 1;
  }
  std::printf(
      "two-hop discovery complete: phase1 = %llu slots, phase2 = %llu "
      "slots\n\n",
      static_cast<unsigned long long>(nd.phase1_slots),
      static_cast<unsigned long long>(nd.phase2_slots));

  // One-hop in-neighbor lists from the ground truth the nodes discovered.
  std::vector<std::vector<net::NodeId>> one_hop(network.node_count());
  for (const net::Link link : network.links()) {
    one_hop[link.to].push_back(link.from);
  }

  // Lowest-id clustering over one-hop knowledge.
  const net::NodeId n = network.node_count();
  std::vector<net::NodeId> head_of(n);
  std::vector<bool> is_head(n, false);
  for (net::NodeId u = 0; u < n; ++u) {
    net::NodeId lowest = u;
    for (const net::NodeId v : one_hop[u]) lowest = std::min(lowest, v);
    head_of[u] = lowest;
    if (lowest == u) is_head[u] = true;
  }
  // Members adopt their chosen head; nodes whose chosen head did not elect
  // itself fall back to self-heading (standard lowest-id fixup).
  for (net::NodeId u = 0; u < n; ++u) {
    if (!is_head[head_of[u]]) {
      head_of[u] = u;
      is_head[u] = true;
    }
  }

  // Gateways: members that see (via two-hop knowledge) a node belonging to
  // a different cluster within two hops.
  std::vector<bool> is_gateway(n, false);
  for (net::NodeId u = 0; u < n; ++u) {
    if (is_head[u]) continue;
    for (const net::NodeId w : nd.two_hop[u]) {
      if (head_of[w] != head_of[u]) {
        is_gateway[u] = true;
        break;
      }
    }
  }

  util::Table table({"node", "role", "cluster head", "1-hop", "2-hop"});
  std::size_t heads = 0;
  std::size_t gateways = 0;
  for (net::NodeId u = 0; u < n; ++u) {
    const char* role = is_head[u]      ? "HEAD"
                       : is_gateway[u] ? "gateway"
                                       : "member";
    heads += is_head[u] ? 1u : 0u;
    gateways += is_gateway[u] ? 1u : 0u;
    table.row()
        .cell(static_cast<std::size_t>(u))
        .cell(role)
        .cell(static_cast<std::size_t>(head_of[u]))
        .cell(one_hop[u].size())
        .cell(nd.two_hop[u].size());
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("%zu clusters, %zu gateway nodes\n", heads, gateways);

  // Sanity: every member's head is a one-hop neighbor that elected itself.
  for (net::NodeId u = 0; u < n; ++u) {
    if (is_head[u]) continue;
    const bool head_is_neighbor =
        std::find(one_hop[u].begin(), one_hop[u].end(), head_of[u]) !=
        one_hop[u].end();
    if (!head_is_neighbor || !is_head[head_of[u]]) {
      std::printf("clustering invariant violated at node %u\n", u);
      return 1;
    }
  }
  std::printf("clustering invariants verified\n");
  return 0;
}
