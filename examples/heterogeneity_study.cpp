// Heterogeneity study: the paper's central qualitative claim is that
// discovery time scales with 1/ρ — the more heterogeneous the channel
// availability, the longer discovery takes. This example sweeps ρ exactly
// using the chain-overlap construction and compares Algorithms 1 and 3
// against the theoretical 1/ρ trend.
//
//   $ ./heterogeneity_study
#include <algorithm>
#include <cstdio>

#include "core/algorithms.hpp"
#include "core/bounds.hpp"
#include "runner/scenario.hpp"
#include "runner/trials.hpp"
#include "util/table.hpp"

int main() {
  using namespace m2hew;

  constexpr net::ChannelId kSetSize = 6;
  constexpr net::NodeId kNodes = 10;
  constexpr std::size_t kDeltaEst = 4;

  std::printf("line of %u nodes, |A(u)| = %u everywhere, span k swept:\n\n",
              kNodes, kSetSize);

  util::Table table({"k (span)", "rho", "alg1 mean slots", "alg3 mean slots",
                     "alg3 p95", "bound x rho (thm3)"});

  double base_alg3 = 0.0;
  double base_rho = 0.0;
  for (const net::ChannelId overlap : {6u, 4u, 3u, 2u, 1u}) {
    runner::ScenarioConfig scenario;
    scenario.topology = runner::TopologyKind::kLine;
    scenario.n = kNodes;
    scenario.channels = runner::ChannelKind::kChainOverlap;
    scenario.set_size = kSetSize;
    scenario.chain_overlap = overlap;
    const net::Network network = runner::build_scenario(scenario, 55);

    runner::SyncTrialConfig trial;
    trial.trials = 60;
    trial.seed = 100 + overlap;
    trial.engine.max_slots = 5'000'000;

    const auto alg1 = runner::run_sync_trials(
        network, core::make_algorithm1(kDeltaEst), trial);
    const auto alg3 = runner::run_sync_trials(
        network, core::make_algorithm3(kDeltaEst), trial);

    core::BoundParams params;
    params.n = network.node_count();
    params.s = network.max_channel_set_size();
    params.delta = std::max<std::size_t>(1, network.max_channel_degree());
    params.delta_est = kDeltaEst;
    params.rho = network.min_span_ratio();
    params.epsilon = 0.1;

    const double mean3 = alg3.completion_slots.summarize().mean;
    if (overlap == kSetSize) {
      base_alg3 = mean3;
      base_rho = params.rho;
    }
    table.row()
        .cell(static_cast<std::size_t>(overlap))
        .cell(params.rho, 3)
        .cell(alg1.completion_slots.summarize().mean, 1)
        .cell(mean3, 1)
        .cell(alg3.completion_slots.summarize().p95, 1)
        .cell(core::theorem3_slot_bound(params) * params.rho, 1);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading the table: measured slots grow as rho shrinks, tracking the\n"
      "1/rho trend the theorems predict (homogeneous rho=%.2f case took\n"
      "%.1f slots on average).\n",
      base_rho, base_alg3);
  const auto throughput = runner::trial_throughput_totals();
  std::printf("(%zu trials in %.3f s — %.1f trials/s on %zu workers)\n",
              throughput.trials, throughput.busy_seconds,
              throughput.trials_per_second(),
              runner::default_trial_threads());
  return 0;
}
